#include "sim/engine.h"

#include <cmath>

#include "common/contract.h"

namespace udwn {

Engine::Engine(const Channel& channel, Network& network,
               const CarrierSensing& sensing,
               std::span<const std::unique_ptr<Protocol>> protocols,
               EngineConfig config)
    : channel_(&channel),
      network_(&network),
      sensing_(&sensing),
      protocols_(protocols),
      config_(config),
      rng_(config.seed),
      workspace_(SlotWorkspaceConfig{
          .cache_topology = config.cache_topology,
          .use_spatial_grid = config.use_spatial_grid,
          .gain_budget_bytes = config.gain_budget_bytes,
          .soa_kernel = config.soa_kernel,
          .threads = config.threads}) {
  UDWN_EXPECT(protocols_.size() == network.size());
  UDWN_EXPECT(config_.slots_per_round >= 1 &&
              config_.slots_per_round <= static_cast<int>(kSlotsPerRound));
  UDWN_EXPECT(config_.drift_bound >= 1);
  UDWN_EXPECT(config_.threads >= 1);

  const std::size_t n = network.size();
  transmitters_.reserve(n);
  tx_payload_.assign(n, 0);
  is_tx_.assign(n, 0);
  node_rng_.reserve(n);
  clock_rate_.resize(n, 1.0);
  clock_progress_.resize(n, 0.0);
  fired_.assign(n, 0);
  last_probability_.assign(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    node_rng_.push_back(rng_.split());
    if (config_.async) {
      const double period = node_rng_.back().uniform(1.0, config_.drift_bound);
      clock_rate_[v] = 1.0 / period;
      clock_progress_[v] = node_rng_.back().uniform();  // random phase
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    UDWN_EXPECT(protocols_[v] != nullptr);
    if (network.alive(NodeId(static_cast<std::uint32_t>(v))))
      protocols_[v]->on_start();
  }
}

Protocol& Engine::protocol(NodeId v) const {
  UDWN_EXPECT(v.value < protocols_.size());
  return *protocols_[v.value];
}

double Engine::last_probability(NodeId v) const {
  UDWN_EXPECT(v.value < last_probability_.size());
  return last_probability_[v.value];
}

bool Engine::clock_fired(NodeId v) const {
  UDWN_EXPECT(v.value < fired_.size());
  return fired_[v.value] != 0;
}

void Engine::step() {
  const std::size_t n = network_->size();

  if (dynamics_ != nullptr) {
    const ChangeSet changes = dynamics_->step(*network_, rng_, round_);
    // Arrivals restart from the protocol's initial configuration (Sec. 2).
    for (NodeId v : changes.arrivals) protocols_[v.value]->on_start();
  }

  // Advance local clocks.
  for (std::size_t v = 0; v < n; ++v) {
    if (!network_->alive(NodeId(static_cast<std::uint32_t>(v)))) {
      fired_[v] = 0;
      continue;
    }
    if (!config_.async) {
      fired_[v] = 1;
      continue;
    }
    const double before = clock_progress_[v];
    clock_progress_[v] += clock_rate_[v];
    fired_[v] = static_cast<std::uint8_t>(std::floor(clock_progress_[v]) >
                                          std::floor(before));
  }

  for (int s = 0; s < config_.slots_per_round; ++s)
    run_slot(static_cast<Slot>(s));

  ++round_;
  if (recorder_ != nullptr) recorder_->on_round_end(round_, *this);
}

void Engine::run_slot(Slot slot) {
  const std::size_t n = network_->size();

  transmitters_.clear();
  // Payloads are captured at transmission time: feedback delivery below may
  // mutate protocol state before all receivers have been served.
  tx_payload_.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId id(static_cast<std::uint32_t>(v));
    if (!network_->alive(id)) {
      if (slot == Slot::Data) last_probability_[v] = 0;
      continue;
    }
    double p = 0;
    if (fired_[v]) {
      p = protocols_[v]->transmit_probability(slot);
      UDWN_EXPECT(p >= 0 && p <= 1);
    }
    if (slot == Slot::Data) last_probability_[v] = p;
    if (p > 0 && node_rng_[v].chance(p)) {
      transmitters_.push_back(id);
      tx_payload_[v] = protocols_[v]->payload(slot);
    }
  }

  const double power_scale =
      slot == Slot::Notify ? config_.notify_power_scale : 1.0;
  const SlotOutcome& outcome =
      channel_->resolve_into(transmitters_, network_->alive_mask(),
                             power_scale, network_->topology_epoch(),
                             workspace_);

  is_tx_.assign(n, 0);
  for (NodeId u : outcome.transmitters) is_tx_[u.value] = 1;

  const QuasiMetric& metric = channel_->metric();
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId id(static_cast<std::uint32_t>(v));
    if (!network_->alive(id)) continue;
    SlotFeedback fb;
    fb.slot = slot;
    fb.local_round = fired_[v] != 0;
    const bool transmitted = is_tx_[v] != 0;
    fb.transmitted = transmitted;
    fb.busy = sensing_->busy(outcome.interference[v]);
    fb.ack = transmitted && sensing_->ack(outcome.interference[v]);
    const NodeId sender = outcome.decoded_from[v];
    UDWN_ASSERT(!sender.valid() || sender.value < n);
    fb.received = sender.valid();
    fb.sender = sender;
    fb.payload = fb.received ? tx_payload_[sender.value] : 0;
    fb.ntd = fb.received && sensing_->ntd(metric.distance(sender, id));
    protocols_[v]->on_slot(fb);
  }

  if (recorder_ != nullptr)
    recorder_->on_slot(round_, slot, outcome, *this);
}

std::optional<Round> Engine::run_until(
    const std::function<bool(const Engine&)>& done, Round max_rounds) {
  UDWN_EXPECT(max_rounds >= 0);
  if (done(*this)) return round_;
  for (Round i = 0; i < max_rounds; ++i) {
    step();
    if (done(*this)) return round_;
  }
  return std::nullopt;
}

}  // namespace udwn
