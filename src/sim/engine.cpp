#include "sim/engine.h"

#include <cmath>

#include "common/contract.h"
#include "obs/obs.h"
#include "sim/batch.h"

namespace udwn {

Engine::Engine(const Channel& channel, Network& network,
               const CarrierSensing& sensing,
               std::span<const std::unique_ptr<Protocol>> protocols,
               EngineConfig config)
    : channel_(&channel),
      network_(&network),
      sensing_(&sensing),
      protocols_(protocols),
      config_(config),
      rng_(config.seed),
      workspace_(SlotWorkspaceConfig{
          .cache_topology = config.cache_topology,
          .use_spatial_grid = config.use_spatial_grid,
          .gain_budget_bytes = config.gain_budget_bytes,
          .gain_tile_cols = config.gain_tile_cols,
          .soa_kernel = config.soa_kernel,
          .simd = config.simd,
          .field_sharding = config.field_sharding,
          .far_field_eps = config.far_field_eps,
          .far_field_cell_factor = config.far_field_cell_factor,
          .threads = config.threads,
          .obs = config.obs}) {
  UDWN_EXPECT(protocols_.size() == network.size());
  UDWN_EXPECT(config_.slots_per_round >= 1 &&
              config_.slots_per_round <= static_cast<int>(kSlotsPerRound));
  UDWN_EXPECT(config_.drift_bound >= 1);
  UDWN_EXPECT(config_.threads >= 1);

  // Delta invalidation needs the network to accumulate per-round change
  // sets; tracking is records-only (no rng, no trace effect), so arming it
  // cannot perturb the simulation.
  if (config_.delta_invalidation && config_.cache_topology)
    network.set_track_changes(true);

  const std::size_t n = network.size();
  transmitters_.reserve(n);
  tx_payload_.assign(n, 0);
  is_tx_.assign(n, 0);
  node_rng_.reserve(n);
  clock_rate_.resize(n, 1.0);
  clock_progress_.resize(n, 0.0);
  fired_.assign(n, 0);
  last_probability_.assign(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    node_rng_.push_back(rng_.split());
    if (config_.async) {
      const double period = node_rng_.back().uniform(1.0, config_.drift_bound);
      clock_rate_[v] = 1.0 / period;
      clock_progress_[v] = node_rng_.back().uniform();  // random phase
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    UDWN_EXPECT(protocols_[v] != nullptr);
    if (network.alive(NodeId(static_cast<std::uint32_t>(v))))
      protocols_[v]->on_start();
  }
  if (config_.obs != nullptr && config_.obs->config().state_transitions) {
    // Baseline for state-transition events: the post-on_start states.
    obs_state_.resize(n);
    for (std::size_t v = 0; v < n; ++v)
      obs_state_[v] = protocols_[v]->obs_state();
  }
  // Armed only with an Obs handle attached: the tap reads the registry at
  // round boundaries, and without a handle there is nothing to read.
  if (config_.obs != nullptr) tap_ = MetricsTap::from_env();
}

Protocol& Engine::protocol(NodeId v) const {
  UDWN_EXPECT(v.value < protocols_.size());
  return *protocols_[v.value];
}

double Engine::last_probability(NodeId v) const {
  UDWN_EXPECT(v.value < last_probability_.size());
  return last_probability_[v.value];
}

bool Engine::clock_fired(NodeId v) const {
  UDWN_EXPECT(v.value < fired_.size());
  return fired_[v.value] != 0;
}

void Engine::step() {
  const std::size_t n = network_->size();

  if (dynamics_ != nullptr) {
    const ChangeSet changes = dynamics_->step(*network_, rng_, round_);
    // Arrivals restart from the protocol's initial configuration (Sec. 2).
    for (NodeId v : changes.arrivals) protocols_[v.value]->on_start();
  }

  // Delta fast path: hand the round's TopologyDelta to the caches while
  // the previous round's stamps are still comparable (before any slot
  // syncs the new epoch). Quiet rounds produce an empty delta and the call
  // is a handful of compares — the static-scenario trace is untouched.
  if (config_.delta_invalidation && config_.cache_topology)
    workspace_.cache().apply_delta(network_->collect_delta());

  // Advance local clocks.
  for (std::size_t v = 0; v < n; ++v) {
    if (!network_->alive(NodeId(static_cast<std::uint32_t>(v)))) {
      fired_[v] = 0;
      continue;
    }
    if (!config_.async) {
      fired_[v] = 1;
      continue;
    }
    const double before = clock_progress_[v];
    clock_progress_[v] += clock_rate_[v];
    fired_[v] = static_cast<std::uint8_t>(std::floor(clock_progress_[v]) >
                                          std::floor(before));
  }

  for (int s = 0; s < config_.slots_per_round; ++s)
    run_slot(static_cast<Slot>(s));

  if (config_.obs != nullptr) {
    // State-transition detection runs after all slots, on the engine
    // thread, comparing against the previous round's snapshot. Arrivals are
    // covered too: on_start may have changed obs_state since last round.
    // The sweep polls a virtual obs_state() per node per round — the
    // expensive tier of the handle, guarded by ObsConfig::state_transitions
    // (obs_state_ is sized only when that is set).
    Obs& obs = *config_.obs;
    std::uint64_t transitions = 0;
    if (!obs_state_.empty()) {
      for (std::size_t v = 0; v < n; ++v) {
        const std::uint32_t cur = protocols_[v]->obs_state();
        if (cur != obs_state_[v]) {
          ++transitions;
          obs.emit(TraceEvent{.round = static_cast<std::uint32_t>(round_),
                              .kind = static_cast<std::uint16_t>(
                                  EventKind::kStateTransition),
                              .slot = static_cast<std::uint8_t>(
                                  config_.slots_per_round),
                              .node = static_cast<std::uint32_t>(v),
                              .aux = obs_state_[v],
                              .value = cur});
          obs_state_[v] = cur;
        }
      }
    }
    publish_round_obs(transitions, network_->alive_count());
    if (tap_.enabled())
      tap_.on_round(*config_.obs, static_cast<std::uint64_t>(round_) + 1);
  }

  ++round_;
  if (recorder_ != nullptr) recorder_->on_round_end(round_, *this);
  // Budget cancellation point for BatchRunner::run_checked trials: a
  // thread-local load + null test when no budget is installed (the common
  // case), so plain runs are unaffected.
  trial_round_checkpoint();
}

void Engine::publish_round_obs(std::uint64_t transitions,
                               std::uint64_t alive) {
  Obs& obs = *config_.obs;
  MetricsRegistry& m = obs.metrics();
  const EngineCounterIds& ids = obs.ids();
  m.add(ids.rounds, 1);
  m.add(ids.state_transitions, transitions);

  // The gain table and pool keep cheap lifetime counters; the registry gets
  // per-round deltas so several engines can share one Obs.
  {
    // Read the table whether or not caching is enabled: disabled_binds is
    // nonzero exactly when gains() is null (budget below one row of tiles).
    const GainTable::Stats cur = workspace_.cache().gains_storage().stats();
    m.add(ids.gain_hits, cur.hits - last_gain_stats_.hits);
    m.add(ids.gain_misses, cur.misses - last_gain_stats_.misses);
    m.add(ids.gain_evictions, cur.evictions - last_gain_stats_.evictions);
    m.add(ids.gain_fills, cur.fills - last_gain_stats_.fills);
    m.add(ids.gain_fallbacks, cur.fallbacks - last_gain_stats_.fallbacks);
    m.add(ids.gain_disabled_binds,
          cur.disabled_binds - last_gain_stats_.disabled_binds);
    last_gain_stats_ = cur;
  }
  if (TaskPool* pool = workspace_.pool()) {
    const TaskPool::Stats cur = pool->stats();
    m.add(ids.pool_jobs, cur.jobs - last_pool_stats_.jobs);
    m.add(ids.pool_chunks, cur.chunks - last_pool_stats_.chunks);
    m.add(ids.pool_idle_ns,
          cur.worker_idle_ns - last_pool_stats_.worker_idle_ns);
    m.add(ids.pool_wait_ns,
          cur.caller_wait_ns - last_pool_stats_.caller_wait_ns);
    last_pool_stats_ = cur;
  }

  obs.emit(TraceEvent{
      .round = static_cast<std::uint32_t>(round_),
      .kind = static_cast<std::uint16_t>(EventKind::kRoundEnd),
      .slot = static_cast<std::uint8_t>(config_.slots_per_round),
      .node = static_cast<std::uint32_t>(alive),
      .value = transitions});
}

void Engine::run_slot(Slot slot) {
  const std::size_t n = network_->size();

  transmitters_.clear();
  // Payloads are captured at transmission time: feedback delivery below may
  // mutate protocol state before all receivers have been served.
  tx_payload_.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId id(static_cast<std::uint32_t>(v));
    if (!network_->alive(id)) {
      if (slot == Slot::Data) last_probability_[v] = 0;
      continue;
    }
    double p = 0;
    if (fired_[v]) {
      p = protocols_[v]->transmit_probability(slot);
      UDWN_EXPECT(p >= 0 && p <= 1);
    }
    if (slot == Slot::Data) last_probability_[v] = p;
    if (p > 0 && node_rng_[v].chance(p)) {
      transmitters_.push_back(id);
      tx_payload_[v] = protocols_[v]->payload(slot);
    }
  }

  const double power_scale =
      slot == Slot::Notify ? config_.notify_power_scale : 1.0;
  // Tag worker-emitted shard spans with this slot's position (pure
  // observability; resolve_into never reads it for any decision).
  if (config_.obs != nullptr)
    workspace_.set_obs_slot(static_cast<std::uint32_t>(round_),
                            static_cast<std::uint8_t>(slot));
  const SlotOutcome& outcome =
      channel_->resolve_into(transmitters_, network_->alive_mask(),
                             power_scale, network_->topology_epoch(),
                             workspace_);

  is_tx_.assign(n, 0);
  for (NodeId u : outcome.transmitters) is_tx_[u.value] = 1;

  const QuasiMetric& metric = channel_->metric();
  const bool count_obs = config_.obs != nullptr;
  // Inert unless events are on: binding the thread ring once per slot keeps
  // the per-delivery emit below to a bounds check and a 24-byte store.
  TraceSink::Writer writer;
  if (count_obs && config_.obs->events_enabled())
    writer = config_.obs->trace().writer();
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId id(static_cast<std::uint32_t>(v));
    if (!network_->alive(id)) continue;
    SlotFeedback fb;
    fb.slot = slot;
    fb.local_round = fired_[v] != 0;
    const bool transmitted = is_tx_[v] != 0;
    fb.transmitted = transmitted;
    fb.busy = sensing_->busy(outcome.interference[v]);
    fb.ack = transmitted && sensing_->ack(outcome.interference[v]);
    const NodeId sender = outcome.decoded_from[v];
    UDWN_ASSERT(!sender.valid() || sender.value < n);
    fb.received = sender.valid();
    fb.sender = sender;
    fb.payload = fb.received ? tx_payload_[sender.value] : 0;
    fb.ntd = fb.received && sensing_->ntd(metric.distance(sender, id));
    if (count_obs) {
      // Counter accumulation rides in this loop because every input is
      // already in registers; a separate counting pass would re-load 24 KB
      // of outcome arrays per slot at n = 2048. Branchless on purpose: the
      // collision predicate (a listener that sensed energy but decoded
      // nothing) holds for roughly half the nodes of a contended slot and
      // a branch would mispredict its way through the loop. Only the
      // delivery emit keeps a branch (~12% taken).
      deliveries += static_cast<std::uint64_t>(fb.received);
      collisions += static_cast<std::uint64_t>(
          static_cast<unsigned>(fb.busy) &
          static_cast<unsigned>(!transmitted) &
          static_cast<unsigned>(!fb.received));
      if (fb.received) {
        writer.emit(TraceEvent{
            .round = static_cast<std::uint32_t>(round_),
            .kind = static_cast<std::uint16_t>(EventKind::kDelivery),
            .slot = static_cast<std::uint8_t>(slot),
            .node = id.value,
            .aux = sender.value,
            .value = fb.payload});
      }
    }
    protocols_[v]->on_slot(fb);
  }

  if (Obs* const obs = config_.obs; obs != nullptr) {
    MetricsRegistry& m = obs->metrics();
    const EngineCounterIds& ids = obs->ids();
    m.add(ids.slots, 1);
    m.add(ids.transmissions, outcome.transmitters.size());
    m.add(ids.deliveries, deliveries);
    m.add(ids.collisions, collisions);
    std::uint64_t mass = 0;
    std::uint64_t clear = 0;
    for (NodeId u : outcome.transmitters) {
      clear += outcome.clear[u.value];
      if (outcome.mass_delivered[u.value] != 0) {
        ++mass;
        writer.emit(TraceEvent{
            .round = static_cast<std::uint32_t>(round_),
            .kind = static_cast<std::uint16_t>(EventKind::kMassDelivery),
            .slot = static_cast<std::uint8_t>(slot),
            .node = u.value});
      }
    }
    m.add(ids.mass_deliveries, mass);
    m.add(ids.clear_slots, clear);
    if (slot == Slot::Data) {
      m.record(ids.hist_contention, outcome.transmitters.size());
      m.record(ids.hist_deliveries, deliveries);
    }
    writer.emit(TraceEvent{
        .round = static_cast<std::uint32_t>(round_),
        .kind = static_cast<std::uint16_t>(EventKind::kSlotEnd),
        .slot = static_cast<std::uint8_t>(slot),
        .node = static_cast<std::uint32_t>(outcome.transmitters.size()),
        .aux = static_cast<std::uint32_t>(deliveries),
        .value = (collisions << 32) | mass});
  }

  if (recorder_ != nullptr)
    recorder_->on_slot(round_, slot, outcome, *this);
}

std::optional<Round> Engine::run_until(
    const std::function<bool(const Engine&)>& done, Round max_rounds) {
  UDWN_EXPECT(max_rounds >= 0);
  if (done(*this)) return round_;
  for (Round i = 0; i < max_rounds; ++i) {
    step();
    if (done(*this)) return round_;
  }
  return std::nullopt;
}

}  // namespace udwn
