#include "sim/dynamics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/contract.h"

namespace udwn {

ChurnDynamics::ChurnDynamics(Config config) : config_(std::move(config)) {
  UDWN_EXPECT(config_.arrival_rate >= 0);
  UDWN_EXPECT(config_.departure_rate >= 0);
}

bool ChurnDynamics::pinned(NodeId v) const {
  return std::find(config_.pinned.begin(), config_.pinned.end(), v) !=
         config_.pinned.end();
}

ChangeSet ChurnDynamics::step(Network& network, Rng& rng, Round /*round*/) {
  ChangeSet changes;

  departure_credit_ += config_.departure_rate;
  while (departure_credit_ >= 1) {
    departure_credit_ -= 1;
    std::vector<NodeId> candidates;
    for (NodeId v : network.alive_nodes())
      if (!pinned(v)) candidates.push_back(v);
    if (candidates.empty()) break;
    const NodeId victim = candidates[rng.below(candidates.size())];
    network.set_alive(victim, false);
    changes.departures.push_back(victim);
  }

  arrival_credit_ += config_.arrival_rate;
  while (arrival_credit_ >= 1) {
    arrival_credit_ -= 1;
    std::vector<NodeId> dead;
    for (std::size_t v = 0; v < network.size(); ++v) {
      const NodeId id(static_cast<std::uint32_t>(v));
      if (!network.alive(id)) dead.push_back(id);
    }
    if (dead.empty()) break;
    const NodeId reborn = dead[rng.below(dead.size())];
    if (config_.placement_extent > 0) {
      if (auto* euclid = dynamic_cast<EuclideanMetric*>(&network.metric())) {
        euclid->set_position(reborn,
                             {rng.uniform(0, config_.placement_extent),
                              rng.uniform(0, config_.placement_extent)});
        // Re-placed arrival: reported as a move too, distinguishing it
        // from the in-place (non-Euclidean / zero-extent) respawn below.
        changes.moved.push_back(reborn);
      }
    }
    network.set_alive(reborn, true);
    changes.arrivals.push_back(reborn);
  }

  return changes;
}

WaypointMobility::WaypointMobility(EuclideanMetric& metric, Config config)
    : metric_(&metric), config_(config) {
  UDWN_EXPECT(config.speed >= 0);
  UDWN_EXPECT(config.extent > 0);
  UDWN_EXPECT(config.mobile_fraction >= 0 && config.mobile_fraction <= 1);
}

ChangeSet WaypointMobility::step(Network& network, Rng& rng,
                                 Round /*round*/) {
  if (!initialized_) {
    waypoints_.resize(metric_->size());
    for (auto& w : waypoints_)
      w = {rng.uniform(0, config_.extent), rng.uniform(0, config_.extent)};
    initialized_ = true;
  }
  if (config_.speed == 0) return {};
  const auto mobile_count = static_cast<std::uint32_t>(
      std::ceil(config_.mobile_fraction *
                static_cast<double>(metric_->size())));
  ChangeSet changes;
  // One batched update span for the whole round: k set_position calls
  // commit as ONE metric version tick (each still dirty-logged per node),
  // so epoch consumers see one bump per round, not one per mover.
  metric_->begin_update();
  for (NodeId v : network.alive_nodes()) {
    if (v.value >= mobile_count) continue;
    Vec2 pos = metric_->position(v);
    Vec2& target = waypoints_[v.value];
    const Vec2 delta = target - pos;
    const double dist = delta.norm();
    if (dist <= config_.speed) {
      pos = target;
      target = {rng.uniform(0, config_.extent),
                rng.uniform(0, config_.extent)};
    } else {
      pos = pos + delta * (config_.speed / dist);
    }
    metric_->set_position(v, pos);
    changes.moved.push_back(v);
  }
  metric_->end_update();
  return changes;
}

CompositeDynamics::CompositeDynamics(std::vector<Dynamics*> parts)
    : parts_(std::move(parts)) {
  for (const auto* part : parts_) UDWN_EXPECT(part != nullptr);
}

namespace {

/// Order-preserving dedup: keep the first occurrence of each id. O(n·k)
/// with tiny k (a round's change lists are short).
void dedup_stable(std::vector<NodeId>& ids) {
  std::vector<NodeId> seen;
  const auto dup = std::remove_if(ids.begin(), ids.end(), [&](NodeId v) {
    if (std::find(seen.begin(), seen.end(), v) != seen.end()) return true;
    seen.push_back(v);
    return false;
  });
  ids.erase(dup, ids.end());
}

}  // namespace

ChangeSet CompositeDynamics::step(Network& network, Rng& rng, Round round) {
  ChangeSet all;
  for (auto* part : parts_) {
    ChangeSet changes = part->step(network, rng, round);
    all.arrivals.insert(all.arrivals.end(), changes.arrivals.begin(),
                        changes.arrivals.end());
    all.departures.insert(all.departures.end(), changes.departures.begin(),
                          changes.departures.end());
    all.moved.insert(all.moved.end(), changes.moved.begin(),
                     changes.moved.end());
  }
  dedup_stable(all.arrivals);
  dedup_stable(all.departures);
  dedup_stable(all.moved);
  // A node that moved and then departed within the round is a departure by
  // the time the merged set is observed: drop it from `moved`.
  const auto moved_and_gone =
      std::remove_if(all.moved.begin(), all.moved.end(), [&](NodeId v) {
        return std::find(all.departures.begin(), all.departures.end(), v) !=
               all.departures.end();
      });
  all.moved.erase(moved_and_gone, all.moved.end());
  return all;
}

}  // namespace udwn
