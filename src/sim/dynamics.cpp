#include "sim/dynamics.h"

#include <algorithm>

#include "common/contract.h"

namespace udwn {

ChurnDynamics::ChurnDynamics(Config config) : config_(std::move(config)) {
  UDWN_EXPECT(config_.arrival_rate >= 0);
  UDWN_EXPECT(config_.departure_rate >= 0);
}

bool ChurnDynamics::pinned(NodeId v) const {
  return std::find(config_.pinned.begin(), config_.pinned.end(), v) !=
         config_.pinned.end();
}

ChangeSet ChurnDynamics::step(Network& network, Rng& rng, Round /*round*/) {
  ChangeSet changes;

  departure_credit_ += config_.departure_rate;
  while (departure_credit_ >= 1) {
    departure_credit_ -= 1;
    std::vector<NodeId> candidates;
    for (NodeId v : network.alive_nodes())
      if (!pinned(v)) candidates.push_back(v);
    if (candidates.empty()) break;
    const NodeId victim = candidates[rng.below(candidates.size())];
    network.set_alive(victim, false);
    changes.departures.push_back(victim);
  }

  arrival_credit_ += config_.arrival_rate;
  while (arrival_credit_ >= 1) {
    arrival_credit_ -= 1;
    std::vector<NodeId> dead;
    for (std::size_t v = 0; v < network.size(); ++v) {
      const NodeId id(static_cast<std::uint32_t>(v));
      if (!network.alive(id)) dead.push_back(id);
    }
    if (dead.empty()) break;
    const NodeId reborn = dead[rng.below(dead.size())];
    if (config_.placement_extent > 0) {
      if (auto* euclid = dynamic_cast<EuclideanMetric*>(&network.metric())) {
        euclid->set_position(reborn,
                             {rng.uniform(0, config_.placement_extent),
                              rng.uniform(0, config_.placement_extent)});
      }
    }
    network.set_alive(reborn, true);
    changes.arrivals.push_back(reborn);
  }

  return changes;
}

WaypointMobility::WaypointMobility(EuclideanMetric& metric, Config config)
    : metric_(&metric), config_(config) {
  UDWN_EXPECT(config.speed >= 0);
  UDWN_EXPECT(config.extent > 0);
}

ChangeSet WaypointMobility::step(Network& network, Rng& rng,
                                 Round /*round*/) {
  if (!initialized_) {
    waypoints_.resize(metric_->size());
    for (auto& w : waypoints_)
      w = {rng.uniform(0, config_.extent), rng.uniform(0, config_.extent)};
    initialized_ = true;
  }
  if (config_.speed == 0) return {};
  for (NodeId v : network.alive_nodes()) {
    Vec2 pos = metric_->position(v);
    Vec2& target = waypoints_[v.value];
    const Vec2 delta = target - pos;
    const double dist = delta.norm();
    if (dist <= config_.speed) {
      pos = target;
      target = {rng.uniform(0, config_.extent),
                rng.uniform(0, config_.extent)};
    } else {
      pos = pos + delta * (config_.speed / dist);
    }
    metric_->set_position(v, pos);
  }
  return {};
}

CompositeDynamics::CompositeDynamics(std::vector<Dynamics*> parts)
    : parts_(std::move(parts)) {
  for (const auto* part : parts_) UDWN_EXPECT(part != nullptr);
}

ChangeSet CompositeDynamics::step(Network& network, Rng& rng, Round round) {
  ChangeSet all;
  for (auto* part : parts_) {
    ChangeSet changes = part->step(network, rng, round);
    all.arrivals.insert(all.arrivals.end(), changes.arrivals.begin(),
                        changes.arrivals.end());
    all.departures.insert(all.departures.end(), changes.departures.begin(),
                          changes.departures.end());
  }
  return all;
}

}  // namespace udwn
