#include "sim/dynamics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <utility>

#include "common/contract.h"

namespace udwn {

ChurnDynamics::ChurnDynamics(Config config) : config_(std::move(config)) {
  UDWN_EXPECT(config_.arrival_rate >= 0);
  UDWN_EXPECT(config_.departure_rate >= 0);
}

bool ChurnDynamics::pinned(NodeId v) const {
  return std::find(config_.pinned.begin(), config_.pinned.end(), v) !=
         config_.pinned.end();
}

ChangeSet ChurnDynamics::step(Network& network, Rng& rng, Round /*round*/) {
  ChangeSet changes;

  departure_credit_ += config_.departure_rate;
  while (departure_credit_ >= 1) {
    departure_credit_ -= 1;
    std::vector<NodeId> candidates;
    for (NodeId v : network.alive_nodes())
      if (!pinned(v)) candidates.push_back(v);
    if (candidates.empty()) break;
    const NodeId victim = candidates[rng.below(candidates.size())];
    network.set_alive(victim, false);
    changes.departures.push_back(victim);
  }

  arrival_credit_ += config_.arrival_rate;
  while (arrival_credit_ >= 1) {
    arrival_credit_ -= 1;
    std::vector<NodeId> dead;
    for (std::size_t v = 0; v < network.size(); ++v) {
      const NodeId id(static_cast<std::uint32_t>(v));
      if (!network.alive(id)) dead.push_back(id);
    }
    if (dead.empty()) break;
    const NodeId reborn = dead[rng.below(dead.size())];
    if (config_.placement_extent > 0) {
      if (auto* euclid = dynamic_cast<EuclideanMetric*>(&network.metric())) {
        euclid->set_position(reborn,
                             {rng.uniform(0, config_.placement_extent),
                              rng.uniform(0, config_.placement_extent)});
        // Re-placed arrival: reported as a move too, distinguishing it
        // from the in-place (non-Euclidean / zero-extent) respawn below.
        changes.moved.push_back(reborn);
      }
    }
    network.set_alive(reborn, true);
    changes.arrivals.push_back(reborn);
  }

  return changes;
}

WaypointMobility::WaypointMobility(EuclideanMetric& metric, Config config)
    : metric_(&metric), config_(config) {
  UDWN_EXPECT(config.speed >= 0);
  UDWN_EXPECT(config.extent > 0);
  UDWN_EXPECT(config.mobile_fraction >= 0 && config.mobile_fraction <= 1);
}

ChangeSet WaypointMobility::step(Network& network, Rng& rng,
                                 Round /*round*/) {
  if (!initialized_) {
    waypoints_.resize(metric_->size());
    for (auto& w : waypoints_)
      w = {rng.uniform(0, config_.extent), rng.uniform(0, config_.extent)};
    initialized_ = true;
  }
  if (config_.speed == 0) return {};
  const auto mobile_count = static_cast<std::uint32_t>(
      std::ceil(config_.mobile_fraction *
                static_cast<double>(metric_->size())));
  ChangeSet changes;
  // One batched update span for the whole round: k set_position calls
  // commit as ONE metric version tick (each still dirty-logged per node),
  // so epoch consumers see one bump per round, not one per mover.
  metric_->begin_update();
  for (NodeId v : network.alive_nodes()) {
    if (v.value >= mobile_count) continue;
    Vec2 pos = metric_->position(v);
    Vec2& target = waypoints_[v.value];
    const Vec2 delta = target - pos;
    const double dist = delta.norm();
    if (dist <= config_.speed) {
      pos = target;
      target = {rng.uniform(0, config_.extent),
                rng.uniform(0, config_.extent)};
    } else {
      pos = pos + delta * (config_.speed / dist);
    }
    metric_->set_position(v, pos);
    changes.moved.push_back(v);
  }
  metric_->end_update();
  return changes;
}

TIntervalAdversary::TIntervalAdversary(MatrixMetric& metric, Config config)
    : metric_(&metric), config_(config) {
  UDWN_EXPECT(config.interval >= 1);
  UDWN_EXPECT(config.edge_length > 0);
  UDWN_EXPECT(config.far_length > config.edge_length);
}

namespace {

using EdgeList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

std::pair<std::uint32_t, std::uint32_t> normalized_edge(std::uint32_t a,
                                                        std::uint32_t b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

/// Edges of `a` that are not in `b`; both inputs sorted ascending.
EdgeList edge_difference(const EdgeList& a, const EdgeList& b) {
  EdgeList out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace

std::vector<std::pair<std::uint32_t, std::uint32_t>>
TIntervalAdversary::pick_chain(const Network& network, std::uint64_t epoch) {
  // Chain order: informed nodes in stable join order, then the uninformed
  // block rotated by the epoch index — one frontier-crossing edge whose
  // uninformed endpoint changes every epoch, and an informed prefix path
  // that consecutive chains share exactly (so the T-1-round union of old
  // and new chain never adds shortcuts on the informed side). Without an
  // oracle everything lands in the "uninformed" block and the rotation
  // alone drives the rewiring.
  std::vector<std::uint32_t> informed;
  std::vector<std::uint32_t> rest;
  for (const NodeId v : network.alive_nodes()) {
    if (frontier_ && frontier_(v))
      informed.push_back(v.value);
    else
      rest.push_back(v.value);
  }
  std::sort(informed.begin(), informed.end());
  std::sort(rest.begin(), rest.end());
  // Fold this epoch's frontier reading into the stable join order: drop
  // nodes no longer informed (protocol restarts, churn), append newcomers.
  const auto gone = std::remove_if(
      informed_order_.begin(), informed_order_.end(), [&](std::uint32_t v) {
        return std::find(informed.begin(), informed.end(), v) ==
               informed.end();
      });
  informed_order_.erase(gone, informed_order_.end());
  for (const std::uint32_t v : informed) {
    if (std::find(informed_order_.begin(), informed_order_.end(), v) ==
        informed_order_.end())
      informed_order_.push_back(v);
  }
  std::vector<std::uint32_t> order = informed_order_;
  // Near window: the 2T+1 smallest uninformed ids in fixed ascending order.
  // The frontier wave advances at most one hop per round, so it cannot
  // cross the window within one epoch — which means the overlap union's
  // extra edges (old chain ∪ new chain) never open a usable shortcut near
  // the frontier and spread stays throttled to ~1 node per round. The far
  // remainder is rotated wholesale every epoch: large-scale rewiring, kept
  // where the message is not.
  const std::size_t window = std::min<std::size_t>(
      rest.size(), 2 * static_cast<std::size_t>(config_.interval) + 1);
  const auto wbegin = rest.begin() + static_cast<std::ptrdiff_t>(window);
  order.insert(order.end(), rest.begin(), wbegin);
  if (rest.size() > window) {
    const std::size_t shift = epoch % (rest.size() - window);
    order.insert(order.end(), wbegin + static_cast<std::ptrdiff_t>(shift),
                 rest.end());
    order.insert(order.end(), wbegin,
                 wbegin + static_cast<std::ptrdiff_t>(shift));
  }
  EdgeList chain;
  for (std::size_t i = 0; i + 1 < order.size(); ++i)
    chain.push_back(normalized_edge(order[i], order[i + 1]));
  std::sort(chain.begin(), chain.end());
  return chain;
}

ChangeSet TIntervalAdversary::step(Network& network, Rng& /*rng*/,
                                   Round /*round*/) {
  const std::uint32_t phase =
      static_cast<std::uint32_t>(rounds_seen_ % config_.interval);
  const std::uint64_t epoch = rounds_seen_ / config_.interval;
  ++rounds_seen_;

  EdgeList added;
  EdgeList removed;
  const bool first_step = rounds_seen_ == 1;
  if (phase == 0) {
    // Epoch boundary: commit the new chain; the old one stays wired for the
    // overlap window (rounds 0..T-2 of this epoch).
    prev_chain_ = std::move(chain_);
    chain_ = pick_chain(network, epoch);
    added = edge_difference(chain_, prev_chain_);
  }
  if (phase == config_.interval - 1) {
    // Epoch's last round: drop the previous chain's exclusive edges, leaving
    // exactly the current chain (for T = 1 this runs right after the add).
    removed = edge_difference(prev_chain_, chain_);
    prev_chain_.clear();
  }

  if (added.empty() && removed.empty() && !first_step) return {};

  metric_->begin_update();
  if (first_step) {
    // Take ownership of the whole matrix: every off-diagonal pair becomes a
    // far non-edge before the first chain is wired.
    const auto n = static_cast<std::uint32_t>(metric_->size());
    for (std::uint32_t u = 0; u < n; ++u)
      for (std::uint32_t v = u + 1; v < n; ++v) {
        metric_->set_distance(NodeId{u}, NodeId{v}, config_.far_length);
        metric_->set_distance(NodeId{v}, NodeId{u}, config_.far_length);
      }
  }
  for (const auto& [u, v] : added) {
    metric_->set_distance(NodeId{u}, NodeId{v}, config_.edge_length);
    metric_->set_distance(NodeId{v}, NodeId{u}, config_.edge_length);
  }
  for (const auto& [u, v] : removed) {
    metric_->set_distance(NodeId{u}, NodeId{v}, config_.far_length);
    metric_->set_distance(NodeId{v}, NodeId{u}, config_.far_length);
  }
  metric_->end_update();

  ChangeSet changes;
  if (first_step) {
    for (std::uint32_t v = 0;
         v < static_cast<std::uint32_t>(metric_->size()); ++v)
      changes.moved.push_back(NodeId{v});
    return changes;
  }
  std::vector<std::uint32_t> touched;
  for (const auto& [u, v] : added) {
    touched.push_back(u);
    touched.push_back(v);
  }
  for (const auto& [u, v] : removed) {
    touched.push_back(u);
    touched.push_back(v);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const std::uint32_t v : touched) changes.moved.push_back(NodeId{v});
  return changes;
}

ChurnDynamics::Config oblivious_churn_preset(double extent,
                                             std::vector<NodeId> pinned) {
  ChurnDynamics::Config config;
  // Roughly one departure and one (re)arrival every four rounds — steady
  // oblivious population noise without emptying the network.
  config.arrival_rate = 0.25;
  config.departure_rate = 0.25;
  config.placement_extent = extent;
  config.pinned = std::move(pinned);
  return config;
}

WaypointMobility::Config oblivious_mobility_preset(double extent) {
  WaypointMobility::Config config;
  // A third of the nodes drift at 5% of the nominal radius per round — fast
  // enough to open and close links within a broadcast, slow enough that the
  // paper's rate-limited edge-dynamics assumption is respected.
  config.speed = 0.05;
  config.extent = extent;
  config.mobile_fraction = 1.0 / 3.0;
  return config;
}

CompositeDynamics::CompositeDynamics(std::vector<Dynamics*> parts)
    : parts_(std::move(parts)) {
  for (const auto* part : parts_) UDWN_EXPECT(part != nullptr);
}

namespace {

/// Order-preserving dedup: keep the first occurrence of each id. O(n·k)
/// with tiny k (a round's change lists are short).
void dedup_stable(std::vector<NodeId>& ids) {
  std::vector<NodeId> seen;
  const auto dup = std::remove_if(ids.begin(), ids.end(), [&](NodeId v) {
    if (std::find(seen.begin(), seen.end(), v) != seen.end()) return true;
    seen.push_back(v);
    return false;
  });
  ids.erase(dup, ids.end());
}

}  // namespace

ChangeSet CompositeDynamics::step(Network& network, Rng& rng, Round round) {
  ChangeSet all;
  for (auto* part : parts_) {
    ChangeSet changes = part->step(network, rng, round);
    all.arrivals.insert(all.arrivals.end(), changes.arrivals.begin(),
                        changes.arrivals.end());
    all.departures.insert(all.departures.end(), changes.departures.begin(),
                          changes.departures.end());
    all.moved.insert(all.moved.end(), changes.moved.begin(),
                     changes.moved.end());
  }
  dedup_stable(all.arrivals);
  dedup_stable(all.departures);
  dedup_stable(all.moved);
  // A node that moved and then departed within the round is a departure by
  // the time the merged set is observed: drop it from `moved`.
  const auto moved_and_gone =
      std::remove_if(all.moved.begin(), all.moved.end(), [&](NodeId v) {
        return std::find(all.departures.begin(), all.departures.end(), v) !=
               all.departures.end();
      });
  all.moved.erase(moved_and_gone, all.moved.end());
  // Merge invariant: whatever order the children ran in (mover before or
  // after the churn part), a node that departed this round must end up
  // departed-only.
  UDWN_ENSURE(std::none_of(all.moved.begin(), all.moved.end(), [&](NodeId v) {
    return std::find(all.departures.begin(), all.departures.end(), v) !=
           all.departures.end();
  }));
  return all;
}

}  // namespace udwn
