// Batched multi-scenario execution over one shared TaskPool.
//
// Experiment binaries run K independent trials (scenario builds + engine
// runs) that differ only in their seed. Before this subsystem each trial ran
// serially on the calling thread; BatchRunner executes them concurrently on
// ONE process-wide TaskPool — no per-trial thread spawn, no pool churn —
// while keeping results deterministic:
//
//   * Seed-stream discipline: every trial k derives all of its randomness
//     from its own seed (trial_seeds gives a decorrelated stream per trial);
//     trials never share an Rng, so execution order cannot leak into the
//     random choices.
//   * Disjoint writes: trial k writes only results[k]. Items are dispatched
//     as chunk_size-1 TaskPool chunks, so chunk boundaries (and therefore
//     which indices exist) depend only on the trial count — which worker
//     runs which trial is scheduling noise the results cannot observe.
//   * Deterministic ordering: run() returns results indexed by trial, not by
//     completion order.
//
// Trials run whole engines, so each trial must itself be single-threaded
// (EngineConfig::threads == 1): TaskPool is not reentrant, and nesting
// pools would oversubscribe the machine. Parallelism across trials replaces
// parallelism within a trial for the experiment workloads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel.h"

namespace udwn {

struct BatchConfig {
  /// Worker threads shared by all trials (including the caller); 1 runs
  /// trials serially inline (no pool is created).
  int threads = 1;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchConfig config = {});

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  [[nodiscard]] int threads() const { return config_.threads; }

  /// Run `body(k)` for every k in [0, count) and return the results in
  /// trial order. `body` must be callable concurrently from multiple
  /// threads and must derive all randomness from k (see the seed-stream
  /// discipline above). R must be default-constructible and movable.
  template <typename Body>
  auto run(std::size_t count, Body&& body)
      -> std::vector<decltype(body(std::size_t{0}))> {
    using R = decltype(body(std::size_t{0}));
    using Fn = std::remove_reference_t<Body>;
    std::vector<R> results(count);
    struct Ctx {
      Fn* body;
      R* results;
    } ctx{&body, results.data()};
    run_items(
        count,
        [](void* context, std::size_t k) {
          auto* c = static_cast<Ctx*>(context);
          c->results[k] = (*c->body)(k);
        },
        &ctx);
    return results;
  }

  /// Untemplated core: run `fn(context, k)` for every k in [0, count),
  /// dispatched one trial per chunk over the shared pool (serially inline
  /// when threads == 1).
  using ItemFn = void (*)(void* context, std::size_t item);
  void run_items(std::size_t count, ItemFn fn, void* context);

  /// Decorrelated per-trial seeds: a deterministic function of (base,
  /// count) only. Distinct trials get distinct streams; distinct bases give
  /// unrelated sequences (xoshiro-generated, not base + k).
  static std::vector<std::uint64_t> trial_seeds(std::uint64_t base,
                                                std::size_t count);

 private:
  BatchConfig config_;
  std::unique_ptr<TaskPool> pool_;  // created when threads > 1
};

}  // namespace udwn
