// Batched multi-scenario execution over one shared TaskPool.
//
// Experiment binaries run K independent trials (scenario builds + engine
// runs) that differ only in their seed. Before this subsystem each trial ran
// serially on the calling thread; BatchRunner executes them concurrently on
// ONE process-wide TaskPool — no per-trial thread spawn, no pool churn —
// while keeping results deterministic:
//
//   * Seed-stream discipline: every trial k derives all of its randomness
//     from its own seed (trial_seeds gives a decorrelated stream per trial);
//     trials never share an Rng, so execution order cannot leak into the
//     random choices.
//   * Disjoint writes: trial k writes only results[k]. Items are dispatched
//     as chunk_size-1 TaskPool chunks, so chunk boundaries (and therefore
//     which indices exist) depend only on the trial count — which worker
//     runs which trial is scheduling noise the results cannot observe.
//   * Deterministic ordering: run() returns results indexed by trial, not by
//     completion order.
//   * Survivable long runs: run_checked() isolates per-trial faults
//     (exceptions and contract violations become TrialError records while
//     sibling trials complete) and enforces optional per-trial round /
//     wall-clock budgets via trial_round_checkpoint(), which Engine::step
//     hits at every round boundary. The fault-free, budget-off path is
//     bit-identical to run().
//
// Trials run whole engines, so each trial must itself be single-threaded
// (EngineConfig::threads == 1): TaskPool is not reentrant, and nesting
// pools would oversubscribe the machine. Parallelism across trials replaces
// parallelism within a trial for the experiment workloads.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/contract.h"
#include "common/parallel.h"

namespace udwn {

struct BatchConfig {
  /// Worker threads shared by all trials (including the caller); 1 runs
  /// trials serially inline (no pool is created).
  int threads = 1;
  /// Per-trial budgets, enforced by run_checked() at round boundaries:
  /// Engine::step calls trial_round_checkpoint() once per completed round
  /// (custom long loops can call it too). 0 = unlimited. A trial past its
  /// budget is cancelled gracefully via TrialTimeout at the next round
  /// boundary and recorded as TrialStatus::kTimedOut. max_rounds cancels at
  /// the first boundary *after* max_rounds rounds completed, so a trial
  /// that finishes in exactly max_rounds rounds still succeeds. With both
  /// budgets off the execution path is bit-identical to run(): no clock is
  /// ever read.
  std::uint64_t max_rounds = 0;
  std::uint64_t trial_deadline_ns = 0;
  /// Cooperative external cancellation, polled by trial_round_checkpoint()
  /// at the same round boundaries as the budgets. Null (the default) means
  /// no poll at all; a non-null flag that stays false costs one relaxed
  /// atomic load per round and cannot perturb results. Once the flag is
  /// true, every in-flight trial stops at its next round boundary and is
  /// recorded as TrialStatus::kCancelled — the hook a long-lived host
  /// (tools/udwnd) uses to hard-stop runaway work during shutdown without
  /// killing the pool.
  const std::atomic<bool>* cancel = nullptr;
};

/// Per-trial outcome classification for run_checked().
enum class TrialStatus : std::uint8_t {
  kOk = 0,
  kFailed = 1,
  kTimedOut = 2,
  kCancelled = 3,
};
[[nodiscard]] const char* to_string(TrialStatus status) noexcept;

/// Structured record of one failed or timed-out trial. `seed` is 0 unless
/// the caller maps trial indices back to seeds (bench/exp_common.h does).
struct TrialError {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  TrialStatus status = TrialStatus::kFailed;
  std::string what;
};

/// Thrown by trial_round_checkpoint() when the running trial exceeds its
/// BatchConfig budget; run_checked() records it as TrialStatus::kTimedOut.
class TrialTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by trial_round_checkpoint() when BatchConfig::cancel flipped
/// true; run_checked() records it as TrialStatus::kCancelled.
class TrialCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Round/deadline budget (plus the optional external cancel flag) for one
/// trial. run_checked() installs one thread-locally around each trial body;
/// trial_round_checkpoint() consults it at round boundaries.
class TrialBudget {
 public:
  TrialBudget(std::uint64_t max_rounds, std::uint64_t deadline_ns,
              const std::atomic<bool>* cancel = nullptr);
  [[nodiscard]] bool limited() const {
    return max_rounds_ != 0 || deadline_ns_ != 0 || cancel_ != nullptr;
  }
  /// Counts one completed round; throws TrialTimeout past a budget and
  /// TrialCancelled when the external flag is set. The wall clock is read
  /// only when a deadline is configured.
  void on_round();

 private:
  std::uint64_t max_rounds_;
  std::uint64_t deadline_ns_;
  const std::atomic<bool>* cancel_;
  std::uint64_t rounds_ = 0;
  std::uint64_t start_ns_ = 0;
};

namespace detail {

/// Thread-local slot holding the running trial's budget; null outside
/// run_checked() or when no budget is configured.
[[nodiscard]] TrialBudget*& current_trial_budget() noexcept;

class ScopedTrialBudget {
 public:
  explicit ScopedTrialBudget(TrialBudget* budget)
      : prev_(current_trial_budget()) {
    current_trial_budget() = budget;
  }
  ~ScopedTrialBudget() { current_trial_budget() = prev_; }
  ScopedTrialBudget(const ScopedTrialBudget&) = delete;
  ScopedTrialBudget& operator=(const ScopedTrialBudget&) = delete;

 private:
  TrialBudget* prev_;
};

}  // namespace detail

/// Round-boundary cancellation point. Engine::step calls this once per
/// completed round; any custom long loop may call it too. Costs one
/// thread-local load plus a null test when no budget is installed — and no
/// budget is ever installed outside run_checked(), so plain runs are
/// unaffected. Throws TrialTimeout when the running trial is past its
/// budget.
inline void trial_round_checkpoint() {
  if (TrialBudget* budget = detail::current_trial_budget())
    budget->on_round();
}

/// Outcome of run_checked(): results in trial order (default-constructed
/// for trials that did not finish), per-trial status, and one TrialError
/// per failed/timed-out trial in ascending trial order.
template <typename R>
struct BatchResult {
  std::vector<R> results;
  std::vector<TrialStatus> status;
  std::vector<TrialError> errors;
  [[nodiscard]] bool ok() const { return errors.empty(); }
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchConfig config = {});

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  [[nodiscard]] int threads() const { return config_.threads; }

  /// Run `body(k)` for every k in [0, count) and return the results in
  /// trial order. `body` must be callable concurrently from multiple
  /// threads and must derive all randomness from k (see the seed-stream
  /// discipline above). R must be default-constructible and movable.
  ///
  /// Strict mode: an exception escaping a trial propagates out of run()
  /// (sibling trials still complete and the pool stays usable — see
  /// TaskPool::run; the surfaced exception is the lowest-index one). For
  /// per-trial fault isolation use run_checked() instead.
  template <typename Body>
  auto run(std::size_t count, Body&& body)
      -> std::vector<decltype(body(std::size_t{0}))> {
    using R = decltype(body(std::size_t{0}));
    using Fn = std::remove_reference_t<Body>;
    std::vector<R> results(count);
    struct Ctx {
      Fn* body;
      R* results;
    } ctx{&body, results.data()};
    run_items(
        count,
        [](void* context, std::size_t k) {
          auto* c = static_cast<Ctx*>(context);
          c->results[k] = (*c->body)(k);
        },
        &ctx);
    return results;
  }

  /// Fault-isolating variant of run(): every trial executes even when
  /// siblings fail. An exception escaping trial k — including a
  /// ContractViolation, because the throwing contract handler is installed
  /// for the duration of the batch — is captured as a TrialError instead of
  /// escaping; exceeding a configured budget (BatchConfig::{max_rounds,
  /// trial_deadline_ns}) is recorded as the distinct kTimedOut outcome.
  /// The fault-free path runs the same trials in the same chunks as run(),
  /// so its results are bit-identical.
  template <typename Body>
  auto run_checked(std::size_t count, Body&& body)
      -> BatchResult<decltype(body(std::size_t{0}))> {
    return run_checked_budgeted(count, config_, std::forward<Body>(body));
  }

  /// run_checked() with per-call budgets: `budgets`' max_rounds /
  /// trial_deadline_ns / cancel replace the construction-time values for
  /// this batch only (its `threads` field is ignored — the pool is fixed at
  /// construction). This is how a long-lived host (tools/udwnd) serves
  /// requests with different budgets from one shared per-worker pool.
  template <typename Body>
  auto run_checked_budgeted(std::size_t count, const BatchConfig& budgets,
                            Body&& body)
      -> BatchResult<decltype(body(std::size_t{0}))> {
    using R = decltype(body(std::size_t{0}));
    using Fn = std::remove_reference_t<Body>;
    BatchResult<R> out;
    out.results.resize(count);
    out.status.assign(count, TrialStatus::kOk);
    std::vector<std::string> what(count);
    struct Ctx {
      Fn* body;
      R* results;
      TrialStatus* status;
      std::string* what;
      const BatchConfig* config;
    } ctx{&body, out.results.data(), out.status.data(), what.data(),
          &budgets};
    // Contract failures become catchable exceptions for the batch duration
    // so one violating trial cannot abort the whole sweep. Refcounted: the
    // handler slot is process-wide, and independent runners (service
    // workers) overlap batches freely — a plain save/restore here would let
    // the first batch to finish reinstate the abort handler under a
    // concurrent batch's violating trial.
    ScopedThrowingContracts contracts;
    run_items(
        count,
        [](void* context, std::size_t k) {
          auto* c = static_cast<Ctx*>(context);
          TrialBudget budget(c->config->max_rounds,
                             c->config->trial_deadline_ns,
                             c->config->cancel);
          detail::ScopedTrialBudget guard(budget.limited() ? &budget
                                                           : nullptr);
          try {
            c->results[k] = (*c->body)(k);
          } catch (const TrialTimeout& timeout) {
            c->status[k] = TrialStatus::kTimedOut;
            c->what[k] = timeout.what();
          } catch (const TrialCancelled& cancelled) {
            c->status[k] = TrialStatus::kCancelled;
            c->what[k] = cancelled.what();
          } catch (const std::exception& error) {
            c->status[k] = TrialStatus::kFailed;
            c->what[k] = error.what();
          } catch (...) {
            c->status[k] = TrialStatus::kFailed;
            c->what[k] = "unknown exception";
          }
        },
        &ctx);
    for (std::size_t k = 0; k < count; ++k) {
      if (out.status[k] == TrialStatus::kOk) continue;
      out.errors.push_back(
          TrialError{k, 0, out.status[k], std::move(what[k])});
    }
    return out;
  }

  /// Untemplated core: run `fn(context, k)` for every k in [0, count),
  /// dispatched one trial per chunk over the shared pool (serially inline
  /// when threads == 1).
  using ItemFn = void (*)(void* context, std::size_t item);
  void run_items(std::size_t count, ItemFn fn, void* context);

  /// Decorrelated per-trial seeds: a deterministic function of (base,
  /// count) only. Distinct trials get distinct streams; distinct bases give
  /// unrelated sequences (xoshiro-generated, not base + k).
  static std::vector<std::uint64_t> trial_seeds(std::uint64_t base,
                                                std::size_t count);

 private:
  BatchConfig config_;
  std::unique_ptr<TaskPool> pool_;  // created when threads > 1
};

}  // namespace udwn
