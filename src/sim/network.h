// Dynamic node population over a quasi-metric (Sec. 2 "Dynamicity").
//
// Node ids are stable for the lifetime of an instance; churn toggles the
// alive flag. Arrivals during a run therefore reuse pre-allocated ids from a
// reserve pool created by the scenario builder, which keeps the metric
// object immutable in size while the *network* it carries changes
// arbitrarily.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "metric/quasi_metric.h"

namespace udwn {

class Network {
 public:
  /// All ids of `metric` start alive. The metric must outlive the network.
  explicit Network(QuasiMetric& metric);

  [[nodiscard]] std::size_t size() const { return alive_.size(); }

  [[nodiscard]] bool alive(NodeId v) const;
  void set_alive(NodeId v, bool alive);

  /// Alive flags indexed by node id (the representation Channel consumes).
  [[nodiscard]] std::span<const std::uint8_t> alive_mask() const {
    return alive_;
  }

  /// Monotonic topology epoch: bumps whenever the communication topology can
  /// have changed — an alive flag toggled here (arrivals/departures) or the
  /// metric mutated underneath us (moves; QuasiMetric::version()). Epoch-
  /// invalidated caches (TopologyCache) recompute neighborhoods exactly when
  /// this value changes. Starts at 1 so a zero-initialized cache stamp is
  /// always stale.
  [[nodiscard]] std::uint64_t topology_epoch() const {
    return alive_epoch_ + metric_->version();
  }

  [[nodiscard]] std::vector<NodeId> alive_nodes() const;
  [[nodiscard]] std::size_t alive_count() const { return alive_count_; }

  [[nodiscard]] QuasiMetric& metric() { return *metric_; }
  [[nodiscard]] const QuasiMetric& metric() const { return *metric_; }

 private:
  QuasiMetric* metric_;
  std::vector<std::uint8_t> alive_;
  std::size_t alive_count_ = 0;
  std::uint64_t alive_epoch_ = 1;
};

}  // namespace udwn
