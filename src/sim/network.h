// Dynamic node population over a quasi-metric (Sec. 2 "Dynamicity").
//
// Node ids are stable for the lifetime of an instance; churn toggles the
// alive flag. Arrivals during a run therefore reuse pre-allocated ids from a
// reserve pool created by the scenario builder, which keeps the metric
// object immutable in size while the *network* it carries changes
// arbitrarily.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "metric/dirty_log.h"
#include "metric/quasi_metric.h"

namespace udwn {

class Network {
 public:
  /// All ids of `metric` start alive. The metric must outlive the network.
  explicit Network(QuasiMetric& metric);

  [[nodiscard]] std::size_t size() const { return alive_.size(); }

  [[nodiscard]] bool alive(NodeId v) const;
  void set_alive(NodeId v, bool alive);

  /// Alive flags indexed by node id (the representation Channel consumes).
  [[nodiscard]] std::span<const std::uint8_t> alive_mask() const {
    return alive_;
  }

  /// Monotonic topology epoch: bumps whenever the communication topology can
  /// have changed — an alive flag toggled here (arrivals/departures) or the
  /// metric mutated underneath us (moves; QuasiMetric::version()). Epoch-
  /// invalidated caches (TopologyCache) recompute neighborhoods exactly when
  /// this value changes. Starts at 1 so a zero-initialized cache stamp is
  /// always stale.
  [[nodiscard]] std::uint64_t topology_epoch() const {
    return alive_epoch_ + metric_->version();
  }

  [[nodiscard]] std::vector<NodeId> alive_nodes() const;
  [[nodiscard]] std::size_t alive_count() const { return alive_count_; }

  [[nodiscard]] QuasiMetric& metric() { return *metric_; }
  [[nodiscard]] const QuasiMetric& metric() const { return *metric_; }

  /// Arm per-round TopologyDelta collection: from here on, alive toggles
  /// are accumulated and the metric's DirtyLog window is anchored, so
  /// collect_delta() can report exactly what changed since the last
  /// collect. Off (the default), set_alive stays a pure flag flip and
  /// collect_delta must not be called. Arming is idempotent.
  void set_track_changes(bool on);
  [[nodiscard]] bool track_changes() const { return track_changes_; }

  /// Fold everything that changed since the previous collect (or since
  /// arming) into a TopologyDelta: the metric's dirty window — coarse when
  /// not localizable — plus the accumulated alive toggles, both sorted and
  /// deduplicated. Resets the window; the returned reference stays valid
  /// (and its buffers are reused) until the next call.
  const TopologyDelta& collect_delta();

 private:
  QuasiMetric* metric_;
  std::vector<std::uint8_t> alive_;
  std::size_t alive_count_ = 0;
  std::uint64_t alive_epoch_ = 1;

  // Delta collection state (inert until set_track_changes(true)).
  bool track_changes_ = false;
  std::vector<NodeId> alive_dirty_;
  std::uint64_t last_metric_version_ = 0;
  std::uint64_t last_epoch_ = 0;
  TopologyDelta delta_;
};

}  // namespace udwn
