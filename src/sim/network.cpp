#include "sim/network.h"

#include <algorithm>

#include "common/contract.h"

namespace udwn {

Network::Network(QuasiMetric& metric)
    : metric_(&metric),
      alive_(metric.size(), 1),
      alive_count_(metric.size()) {}

bool Network::alive(NodeId v) const {
  UDWN_EXPECT(v.value < alive_.size());
  return alive_[v.value] != 0;
}

void Network::set_alive(NodeId v, bool alive) {
  UDWN_EXPECT(v.value < alive_.size());
  const bool was = alive_[v.value] != 0;
  if (was == alive) return;
  alive_[v.value] = static_cast<std::uint8_t>(alive);
  alive_count_ += alive ? 1 : std::size_t(-1);
  ++alive_epoch_;
  if (track_changes_) alive_dirty_.push_back(v);
}

void Network::set_track_changes(bool on) {
  if (on == track_changes_) return;
  track_changes_ = on;
  alive_dirty_.clear();
  if (on) {
    // Anchor the collection window at the current state: the first
    // collect_delta reports only changes from here on.
    last_metric_version_ = metric_->version();
    last_epoch_ = topology_epoch();
  }
}

const TopologyDelta& Network::collect_delta() {
  UDWN_EXPECT(track_changes_);
  delta_.moved.clear();
  delta_.alive_toggled.clear();
  delta_.prev_metric_version = last_metric_version_;
  delta_.metric_version = metric_->version();
  delta_.prev_epoch = last_epoch_;
  delta_.epoch = topology_epoch();
  delta_.coarse = !metric_->dirty_log().collect(
      delta_.prev_metric_version, delta_.metric_version, delta_.moved);
  if (delta_.coarse) delta_.moved.clear();
  std::sort(delta_.moved.begin(), delta_.moved.end());
  delta_.moved.erase(std::unique(delta_.moved.begin(), delta_.moved.end()),
                     delta_.moved.end());
  delta_.alive_toggled.assign(alive_dirty_.begin(), alive_dirty_.end());
  std::sort(delta_.alive_toggled.begin(), delta_.alive_toggled.end());
  delta_.alive_toggled.erase(std::unique(delta_.alive_toggled.begin(),
                                         delta_.alive_toggled.end()),
                             delta_.alive_toggled.end());
  alive_dirty_.clear();
  last_metric_version_ = delta_.metric_version;
  last_epoch_ = delta_.epoch;
  return delta_;
}

std::vector<NodeId> Network::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(alive_count_);
  for (std::size_t v = 0; v < alive_.size(); ++v)
    if (alive_[v]) out.push_back(NodeId(static_cast<std::uint32_t>(v)));
  return out;
}

}  // namespace udwn
