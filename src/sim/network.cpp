#include "sim/network.h"

#include "common/contract.h"

namespace udwn {

Network::Network(QuasiMetric& metric)
    : metric_(&metric),
      alive_(metric.size(), 1),
      alive_count_(metric.size()) {}

bool Network::alive(NodeId v) const {
  UDWN_EXPECT(v.value < alive_.size());
  return alive_[v.value] != 0;
}

void Network::set_alive(NodeId v, bool alive) {
  UDWN_EXPECT(v.value < alive_.size());
  const bool was = alive_[v.value] != 0;
  if (was == alive) return;
  alive_[v.value] = static_cast<std::uint8_t>(alive);
  alive_count_ += alive ? 1 : std::size_t(-1);
  ++alive_epoch_;
}

std::vector<NodeId> Network::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(alive_count_);
  for (std::size_t v = 0; v < alive_.size(); ++v)
    if (alive_[v]) out.push_back(NodeId(static_cast<std::uint32_t>(v)));
  return out;
}

}  // namespace udwn
