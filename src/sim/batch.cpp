#include "sim/batch.h"

#include <string>

#include "common/contract.h"
#include "common/rng.h"
#include "obs/clock.h"

namespace udwn {

const char* to_string(TrialStatus status) noexcept {
  switch (status) {
    case TrialStatus::kOk:
      return "ok";
    case TrialStatus::kFailed:
      return "failed";
    case TrialStatus::kTimedOut:
      return "timeout";
    case TrialStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

TrialBudget::TrialBudget(std::uint64_t max_rounds, std::uint64_t deadline_ns,
                         const std::atomic<bool>* cancel)
    : max_rounds_(max_rounds), deadline_ns_(deadline_ns), cancel_(cancel) {
  // The clock is read only for deadline budgets: a rounds-only (or
  // unlimited) budget keeps the trial a pure function of its seed.
  if (deadline_ns_ != 0)
    start_ns_ = obs_now_ns();  // udwn-lint: allow(det-wall-clock): deadline
                               // budgets are wall-clock by contract
}

void TrialBudget::on_round() {
  ++rounds_;
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed))
    throw TrialCancelled("trial cancelled by host");
  if (max_rounds_ != 0 && rounds_ > max_rounds_)
    throw TrialTimeout("trial exceeded max_rounds = " +
                       std::to_string(max_rounds_));
  if (deadline_ns_ != 0) {
    const std::uint64_t now =
        obs_now_ns();  // udwn-lint: allow(det-wall-clock): deadline check
    if (now - start_ns_ > deadline_ns_)
      throw TrialTimeout("trial exceeded deadline = " +
                         std::to_string(deadline_ns_) + " ns");
  }
}

namespace detail {

TrialBudget*& current_trial_budget() noexcept {
  thread_local TrialBudget* budget = nullptr;
  return budget;
}

}  // namespace detail

BatchRunner::BatchRunner(BatchConfig config) : config_(config) {
  UDWN_EXPECT(config.threads >= 1);
  if (config.threads > 1)
    pool_ = std::make_unique<TaskPool>(config.threads);
}

void BatchRunner::run_items(std::size_t count, ItemFn fn, void* context) {
  if (count == 0) return;
  if (pool_ == nullptr) {
    for (std::size_t k = 0; k < count; ++k) fn(context, k);
    return;
  }
  struct Dispatch {
    ItemFn fn;
    void* context;
  } dispatch{fn, context};
  // chunk_size 1: trials have wildly uneven cost, so workers claim them one
  // at a time. Each chunk is exactly one trial index — writes stay disjoint
  // per trial no matter how the claims interleave.
  pool_->run(
      0, count,
      [](void* raw, std::size_t lo, std::size_t hi) {
        auto* d = static_cast<Dispatch*>(raw);
        for (std::size_t k = lo; k < hi; ++k) d->fn(d->context, k);
      },
      &dispatch, /*chunk_size=*/1);
}

std::vector<std::uint64_t> BatchRunner::trial_seeds(std::uint64_t base,
                                                    std::size_t count) {
  std::vector<std::uint64_t> seeds(count);
  Rng rng(base);
  for (auto& s : seeds) s = rng.next();
  return seeds;
}

}  // namespace udwn
