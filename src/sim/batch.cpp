#include "sim/batch.h"

#include "common/contract.h"
#include "common/rng.h"

namespace udwn {

BatchRunner::BatchRunner(BatchConfig config) : config_(config) {
  UDWN_EXPECT(config.threads >= 1);
  if (config.threads > 1)
    pool_ = std::make_unique<TaskPool>(config.threads);
}

void BatchRunner::run_items(std::size_t count, ItemFn fn, void* context) {
  if (count == 0) return;
  if (pool_ == nullptr) {
    for (std::size_t k = 0; k < count; ++k) fn(context, k);
    return;
  }
  struct Dispatch {
    ItemFn fn;
    void* context;
  } dispatch{fn, context};
  // chunk_size 1: trials have wildly uneven cost, so workers claim them one
  // at a time. Each chunk is exactly one trial index — writes stay disjoint
  // per trial no matter how the claims interleave.
  pool_->run(
      0, count,
      [](void* raw, std::size_t lo, std::size_t hi) {
        auto* d = static_cast<Dispatch*>(raw);
        for (std::size_t k = lo; k < hi; ++k) d->fn(d->context, k);
      },
      &dispatch, /*chunk_size=*/1);
}

std::vector<std::uint64_t> BatchRunner::trial_seeds(std::uint64_t base,
                                                    std::size_t count) {
  std::vector<std::uint64_t> seeds(count);
  Rng rng(base);
  for (auto& s : seeds) s = rng.next();
  return seeds;
}

}  // namespace udwn
