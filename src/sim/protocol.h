// The per-node protocol abstraction the engine drives.
//
// Every algorithm in the paper (Try&Adjust, LocalBcast, Bcast, Bcast*,
// the dominating-set stage, and all baselines) is a Protocol: a state
// machine that exposes a transmission probability per slot and consumes the
// sensing feedback of each slot. Nodes are autonomous — a protocol instance
// sees only what its node could physically observe: its own transmissions,
// the CD/ACK/NTD primitive outcomes, and decoded messages.
#pragma once

#include "common/types.h"

namespace udwn {

/// What one node observed in one slot.
struct SlotFeedback {
  Slot slot = Slot::Data;
  /// True iff the node's local clock fired this global round (always true in
  /// synchronous mode). When false, the node was mid-round: it can still
  /// decode messages (the radio is on) but takes no protocol step.
  bool local_round = true;
  /// The node transmitted in this slot.
  bool transmitted = false;
  /// CD outcome: Busy (true) / Idle (false).
  bool busy = false;
  /// ACK outcome; meaningful only when `transmitted`.
  bool ack = false;
  /// The node decoded a message this slot.
  bool received = false;
  /// Sender of the decoded message; valid iff `received`.
  NodeId sender{};
  /// Payload tag of the decoded message (the sender's Protocol::payload at
  /// transmission time); meaningful only when `received`. Protocols that
  /// never override payload() always see 0.
  std::uint32_t payload = 0;
  /// NTD outcome; meaningful only when `received`.
  bool ntd = false;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called when the node (re)enters the network: at engine start for nodes
  /// alive from round 0 and on every churn arrival. Implementations reset to
  /// their initial configuration (the paper's dynamicity assumption).
  virtual void on_start() {}

  /// Probability of transmitting in `slot` of the current local round.
  /// Must be in [0, 1].
  [[nodiscard]] virtual double transmit_probability(Slot slot) = 0;

  /// Payload tag attached to a transmission in `slot`. The engine copies it
  /// into the SlotFeedback of every node that decodes the transmission.
  /// Protocols distinguishing message kinds (e.g. the overlapped App. G
  /// algorithm: dummy contention traffic vs the real broadcast payload)
  /// override this; the default tags everything 0.
  [[nodiscard]] virtual std::uint32_t payload(Slot /*slot*/) const {
    return 0;
  }

  /// Feedback after each slot (delivered to every alive node; see
  /// SlotFeedback::local_round).
  virtual void on_slot(const SlotFeedback& feedback) = 0;

  /// True when the node's task is complete; it transmits no further (the
  /// engine still delivers receive feedback).
  [[nodiscard]] virtual bool finished() const { return false; }

  /// Small integer summarizing the protocol's phase, for observability
  /// only: when an Obs handle is attached, the engine emits a
  /// state_transition trace event whenever this value changes between
  /// rounds. Implementations pick their own encoding (documented per
  /// protocol); the engine never interprets it. Must be cheap and must not
  /// mutate state.
  [[nodiscard]] virtual std::uint32_t obs_state() const { return 0; }
};

}  // namespace udwn
