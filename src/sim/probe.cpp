#include "sim/probe.h"

#include <algorithm>

#include "common/contract.h"

namespace udwn {

VicinityStats probe_vicinity(const Engine& engine, NodeId v, double rho) {
  UDWN_EXPECT(rho > 0);
  const Channel& channel = engine.channel();
  const QuasiMetric& metric = channel.metric();
  const PathLoss& pathloss = channel.pathloss();
  const double radius = channel.model().max_range();
  const double close = radius / 2;
  const double vicinity = rho * radius;

  VicinityStats stats;
  for (std::size_t w = 0; w < metric.size(); ++w) {
    const NodeId id(static_cast<std::uint32_t>(w));
    if (!engine.network().alive(id)) continue;
    const double p = engine.last_probability(id);
    if (p == 0) continue;
    if (id != v && metric.sym_distance(id, v) < close)
      stats.close_contention += p;
    if (id == v) stats.close_contention += p;
    // In-ball membership D(v, ρR): d(u, v) < ρR.
    if (metric.distance(id, v) < vicinity) {
      stats.vicinity_contention += p;
    } else {
      stats.expected_interference +=
          p * pathloss.signal(metric.distance(id, v));
    }
  }
  return stats;
}

bool is_good_round(const Engine& engine, NodeId v, double rho,
                   const GoodRoundThresholds& thresholds) {
  const VicinityStats stats = probe_vicinity(engine, v, rho);
  return stats.vicinity_contention < thresholds.eta_hat &&
         stats.expected_interference <= thresholds.interference_cap;
}

GoodRoundRecorder::GoodRoundRecorder(std::vector<NodeId> probes, double rho,
                                     GoodRoundThresholds thresholds)
    : probes_(std::move(probes)), rho_(rho), thresholds_(thresholds) {
  UDWN_EXPECT(!probes_.empty());
  tallies_.resize(probes_.size());
}

void GoodRoundRecorder::on_slot(Round /*round*/, Slot slot,
                                const SlotOutcome& /*outcome*/,
                                const Engine& engine) {
  if (slot != Slot::Data) return;  // contention is defined on the data slot
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    const NodeId v = probes_[i];
    if (!engine.network().alive(v)) continue;
    const VicinityStats stats = probe_vicinity(engine, v, rho_);
    Tally& tally = tallies_[i];
    ++tally.rounds;
    const bool bounded = stats.vicinity_contention < thresholds_.eta_hat;
    const bool low =
        stats.expected_interference <= thresholds_.interference_cap;
    tally.bounded_contention += bounded ? 1 : 0;
    tally.low_interference += low ? 1 : 0;
    tally.good += (bounded && low) ? 1 : 0;
    tally.max_vicinity_contention =
        std::max(tally.max_vicinity_contention, stats.vicinity_contention);
    tally.sum_vicinity_contention += stats.vicinity_contention;
  }
}

const GoodRoundRecorder::Tally& GoodRoundRecorder::tally(NodeId probe) const {
  const auto it = std::find(probes_.begin(), probes_.end(), probe);
  UDWN_EXPECT(it != probes_.end());
  return tallies_[static_cast<std::size_t>(it - probes_.begin())];
}

}  // namespace udwn
