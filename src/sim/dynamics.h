// Adversarial/dynamic behaviour drivers (Sec. 2 "Dynamicity").
//
// The paper allows unlimited node churn (arrivals restart from the initial
// protocol configuration) and rate-limited edge changes: over any window of
// Ω(log n) rounds a node may gain at most τ·|T| new neighbors from edge
// dynamics. We realize churn by toggling ids between alive and a reserve
// pool, and edge changes by bounded-speed waypoint mobility whose speed cap
// is derived from the target τ.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "metric/euclidean.h"
#include "sim/network.h"

namespace udwn {

/// Population changes one dynamics step produced. Arrivals must be reported
/// so the engine can restart the nodes' protocols.
struct ChangeSet {
  std::vector<NodeId> arrivals;
  std::vector<NodeId> departures;
  /// Nodes whose metric position was mutated this step: mobility movers and
  /// re-placed churn arrivals. In-place (non-Euclidean, or zero
  /// placement_extent) arrivals appear in `arrivals` only — that is how
  /// consumers tell a respawn-in-place from a respawn-elsewhere. Purely
  /// informational for the engine (cache invalidation reads the metric's
  /// DirtyLog, not this), but recorders and tests consume it.
  std::vector<NodeId> moved;
};

class Dynamics {
 public:
  virtual ~Dynamics() = default;
  /// Advance one round of dynamics before the communication slots run.
  virtual ChangeSet step(Network& network, Rng& rng, Round round) = 0;
};

/// Rate-based churn: on average `arrival_rate` dead nodes revive and
/// `departure_rate` alive nodes leave per round (fractional rates
/// accumulate). Euclidean arrivals are re-placed uniformly in a bounding
/// box; non-Euclidean metrics revive in place. Ids in `pinned` never leave
/// (e.g. a broadcast source or the probe node of an experiment).
class ChurnDynamics final : public Dynamics {
 public:
  struct Config {
    double arrival_rate = 0;
    double departure_rate = 0;
    /// Re-place Euclidean arrivals uniformly in [0,extent]²; 0 keeps the
    /// node's previous position.
    double placement_extent = 0;
    std::vector<NodeId> pinned;
  };

  explicit ChurnDynamics(Config config);

  ChangeSet step(Network& network, Rng& rng, Round round) override;

 private:
  [[nodiscard]] bool pinned(NodeId v) const;

  Config config_;
  double arrival_credit_ = 0;
  double departure_credit_ = 0;
};

/// Bounded-speed random-waypoint mobility over a EuclideanMetric. Each node
/// drifts toward a private waypoint at `speed` distance-units per round and
/// draws a fresh waypoint (uniform in [0,extent]²) on arrival. The
/// edge-change rate τ of Sec. 2 scales with speed/R.
class WaypointMobility final : public Dynamics {
 public:
  struct Config {
    double speed = 0;   // distance per round, >= 0
    double extent = 0;  // waypoint domain [0,extent]^2, > 0
    /// Fraction of the id space that is mobile: ids below
    /// ceil(mobile_fraction * n) drift, the rest sit still. 1 = everyone
    /// (the classic random-waypoint model); small fractions model a mostly
    /// static deployment with a few movers — the regime where delta
    /// invalidation shines (work per round scales with the movers).
    double mobile_fraction = 1.0;
  };

  /// `metric` must be the metric the target network runs on.
  WaypointMobility(EuclideanMetric& metric, Config config);

  ChangeSet step(Network& network, Rng& rng, Round round) override;

 private:
  EuclideanMetric* metric_;
  Config config_;
  std::vector<Vec2> waypoints_;
  bool initialized_ = false;
};

/// Runs several dynamics in sequence each round (e.g. churn + mobility).
/// The merged ChangeSet preserves part order, deduplicates each list
/// (first occurrence wins), and drops departed nodes from `moved` — a node
/// that drifted and then left the network this round is a departure, not a
/// move, by the time anyone observes the round.
class CompositeDynamics final : public Dynamics {
 public:
  explicit CompositeDynamics(std::vector<Dynamics*> parts);

  ChangeSet step(Network& network, Rng& rng, Round round) override;

 private:
  std::vector<Dynamics*> parts_;
};

}  // namespace udwn
