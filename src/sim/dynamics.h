// Adversarial/dynamic behaviour drivers (Sec. 2 "Dynamicity").
//
// The paper allows unlimited node churn (arrivals restart from the initial
// protocol configuration) and rate-limited edge changes: over any window of
// Ω(log n) rounds a node may gain at most τ·|T| new neighbors from edge
// dynamics. We realize churn by toggling ids between alive and a reserve
// pool, and edge changes by bounded-speed waypoint mobility whose speed cap
// is derived from the target τ.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "metric/euclidean.h"
#include "metric/matrix_metric.h"
#include "sim/network.h"

namespace udwn {

/// Population changes one dynamics step produced. Arrivals must be reported
/// so the engine can restart the nodes' protocols.
struct ChangeSet {
  std::vector<NodeId> arrivals;
  std::vector<NodeId> departures;
  /// Nodes whose metric position was mutated this step: mobility movers and
  /// re-placed churn arrivals. In-place (non-Euclidean, or zero
  /// placement_extent) arrivals appear in `arrivals` only — that is how
  /// consumers tell a respawn-in-place from a respawn-elsewhere. Purely
  /// informational for the engine (cache invalidation reads the metric's
  /// DirtyLog, not this), but recorders and tests consume it.
  std::vector<NodeId> moved;
};

class Dynamics {
 public:
  virtual ~Dynamics() = default;
  /// Advance one round of dynamics before the communication slots run.
  virtual ChangeSet step(Network& network, Rng& rng, Round round) = 0;
};

/// Rate-based churn: on average `arrival_rate` dead nodes revive and
/// `departure_rate` alive nodes leave per round (fractional rates
/// accumulate). Euclidean arrivals are re-placed uniformly in a bounding
/// box; non-Euclidean metrics revive in place. Ids in `pinned` never leave
/// (e.g. a broadcast source or the probe node of an experiment).
class ChurnDynamics final : public Dynamics {
 public:
  struct Config {
    double arrival_rate = 0;
    double departure_rate = 0;
    /// Re-place Euclidean arrivals uniformly in [0,extent]²; 0 keeps the
    /// node's previous position.
    double placement_extent = 0;
    std::vector<NodeId> pinned;
  };

  explicit ChurnDynamics(Config config);

  ChangeSet step(Network& network, Rng& rng, Round round) override;

 private:
  [[nodiscard]] bool pinned(NodeId v) const;

  Config config_;
  double arrival_credit_ = 0;
  double departure_credit_ = 0;
};

/// Bounded-speed random-waypoint mobility over a EuclideanMetric. Each node
/// drifts toward a private waypoint at `speed` distance-units per round and
/// draws a fresh waypoint (uniform in [0,extent]²) on arrival. The
/// edge-change rate τ of Sec. 2 scales with speed/R.
class WaypointMobility final : public Dynamics {
 public:
  struct Config {
    double speed = 0;   // distance per round, >= 0
    double extent = 0;  // waypoint domain [0,extent]^2, > 0
    /// Fraction of the id space that is mobile: ids below
    /// ceil(mobile_fraction * n) drift, the rest sit still. 1 = everyone
    /// (the classic random-waypoint model); small fractions model a mostly
    /// static deployment with a few movers — the regime where delta
    /// invalidation shines (work per round scales with the movers).
    double mobile_fraction = 1.0;
  };

  /// `metric` must be the metric the target network runs on.
  WaypointMobility(EuclideanMetric& metric, Config config);

  ChangeSet step(Network& network, Rng& rng, Round round) override;

 private:
  EuclideanMetric* metric_;
  Config config_;
  std::vector<Vec2> waypoints_;
  bool initialized_ = false;
};

/// Worst-case T-interval-connected dynamic graphs in the Haeupler–Kuhn
/// sense (arXiv:1208.6051, "Lower Bounds on Information Dissemination in
/// Dynamic Networks"; see PAPERS.md): every window of `interval` consecutive
/// rounds shares a connected spanning subgraph, yet the adversary is
/// otherwise free to rewire — and this one rewires *against the message
/// frontier* when given a frontier oracle.
///
/// Construction (the guarantee is checked by property test, not assumed):
/// time splits into epochs of `interval` rounds. Each epoch k commits a
/// spanning chain C_k; rounds 0..T-2 of the epoch carry C_{k-1} ∪ C_k and
/// round T-1 carries C_k alone. Any T-round window therefore contains some
/// C_k in every one of its rounds (the epoch it starts in), which is the
/// required stable connected spanning subgraph — while consecutive epochs
/// may rewire the uninformed side completely. With a frontier oracle
/// installed, C_k chains the informed nodes first *in the stable order they
/// joined the frontier* (so consecutive chains share the informed prefix
/// exactly and the overlap union never adds informed-side shortcuts), then
/// a fixed ascending window of the 2T+1 nearest uninformed nodes (the wave
/// cannot cross it within one epoch, so overlap-union edges open no usable
/// shortcut), then the remaining uninformed nodes rotated by k. Exactly one
/// chain edge crosses the frontier, the far side is reshuffled every epoch,
/// and the message is throttled to the one-hop-per-round frontier wave —
/// completion is forced toward Ω(n) rounds however small the diameter a
/// friendly generator would offer. Without an oracle the rotation alone
/// rewires obliviously.
///
/// The adversary drives a MatrixMetric (chain edges at `edge_length`, all
/// other pairs at `far_length`, written symmetrically inside one
/// begin_update()/end_update() span per round), so the DirtyLog delta path
/// sees ordinary localized mutations and delta ≡ epoch invalidation holds
/// under adversarial rewiring too. It is fully deterministic: `step` never
/// draws from the Rng.
class TIntervalAdversary final : public Dynamics {
 public:
  struct Config {
    /// The T of T-interval connectivity; 1 = may rewire every round.
    std::uint32_t interval = 8;
    /// Distance written for chain edges. The default sits below the default
    /// ScenarioConfig comm radius (1-ε)R = 0.7, so chain links decode under
    /// every reception model out of the box.
    double edge_length = 0.5;
    /// Distance written for non-edges (pick far outside every model's
    /// reach; also the value the whole matrix is reset to on round 0).
    double far_length = 1.0e6;
  };

  /// Predicate "node v currently holds the message" — read once per node at
  /// each epoch boundary. Null = oblivious rotation.
  using FrontierOracle = std::function<bool(NodeId)>;

  /// `metric` must be the metric the target network runs on; the adversary
  /// overwrites every off-diagonal entry on its first step.
  TIntervalAdversary(MatrixMetric& metric, Config config);

  void set_frontier(FrontierOracle oracle) { frontier_ = std::move(oracle); }

  ChangeSet step(Network& network, Rng& rng, Round round) override;

  /// The chain committed by the current epoch, as normalized (min,max) id
  /// pairs — the stable subgraph witness for connectivity property tests.
  [[nodiscard]] const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
  backbone() const {
    return chain_;
  }

 private:
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>>
  pick_chain(const Network& network, std::uint64_t epoch);

  MatrixMetric* metric_;
  Config config_;
  FrontierOracle frontier_;
  std::uint64_t rounds_seen_ = 0;
  /// Informed nodes in the order they joined the frontier — the stable
  /// informed prefix shared by consecutive chains.
  std::vector<std::uint32_t> informed_order_;
  /// Current epoch's chain and the previous epoch's (kept through the
  /// overlap window, empty after the epoch's last round drops it).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> chain_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> prev_chain_;
};

/// Oblivious-adversary presets for the EXP-18 arena: fixed churn/mobility
/// parameter bundles that do not react to protocol state (the random-
/// dynamics middle ground between a static network and TIntervalAdversary).
[[nodiscard]] ChurnDynamics::Config oblivious_churn_preset(
    double extent, std::vector<NodeId> pinned);
[[nodiscard]] WaypointMobility::Config oblivious_mobility_preset(
    double extent);

/// Runs several dynamics in sequence each round (e.g. churn + mobility).
/// The merged ChangeSet preserves part order, deduplicates each list
/// (first occurrence wins), and drops departed nodes from `moved` — a node
/// that drifted and then left the network this round is a departure, not a
/// move, by the time anyone observes the round.
class CompositeDynamics final : public Dynamics {
 public:
  explicit CompositeDynamics(std::vector<Dynamics*> parts);

  ChangeSet step(Network& network, Rng& rng, Round round) override;

 private:
  std::vector<Dynamics*> parts_;
};

}  // namespace udwn
