// The single blessed home for wall-clock timing.
//
// Simulation results must be pure functions of the seed; wall-clock time is
// observability-only (pool idle time, benchmark harnesses). To keep timing
// from leaking into simulation decisions, the custom lint
// (tools/udwn_lint.py, rule `chrono`) flags raw std::chrono outside
// src/obs/ and bench/ — instrumentation elsewhere must go through this
// header, which makes every timing call grep-able.
//
// Header-only on purpose: src/common (TaskPool) can time its idle waits
// without a link dependency on udwn_obs, so the library layering stays
// acyclic (udwn_obs depends on udwn_common, never the reverse).
#pragma once

#include <chrono>
#include <cstdint>

namespace udwn {

/// Monotonic nanoseconds since an arbitrary epoch. Observability only —
/// never feed this into a simulation decision.
[[nodiscard]] inline std::uint64_t obs_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace udwn
