// The single blessed home for wall-clock timing.
//
// Simulation results must be pure functions of the seed; wall-clock time is
// observability-only (pool idle time, benchmark harnesses). To keep timing
// from leaking into simulation decisions, the static checkers flag raw
// std::chrono (tools/udwn_lint.py, rule `chrono`) and obs_now_ns calls
// (tools/udwn_analyze.py, rule `det-wall-clock`) outside src/obs/ and
// bench/ — instrumentation elsewhere must go through this header, which
// makes every timing call grep-able.
//
// Layers below obs never include this header: src/common's TaskPool takes
// the clock as an injected function pointer (TaskPool::NowNsFn), which the
// obs-aware caller points at obs_now_ns. That keeps the include DAG strict
// (udwn_obs depends on udwn_common, never the reverse — see DESIGN.md).
#pragma once

#include <chrono>
#include <cstdint>

namespace udwn {

/// Monotonic nanoseconds since an arbitrary epoch. Observability only —
/// never feed this into a simulation decision.
[[nodiscard]] inline std::uint64_t obs_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace udwn
