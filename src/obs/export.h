// Trace exporters: JSON-lines for scripting, chrome://tracing for the
// browser timeline viewer (chrome://tracing or https://ui.perfetto.dev).
//
// Both exporters are lossless over the event stream (one output record per
// TraceEvent); the JSONL format additionally round-trips counters and
// histograms, and import_jsonl() reads it back so tests and the inspector
// can verify event-count parity between the binary and both text forms.
// Schemas are documented in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "obs/trace.h"

namespace udwn {

/// Human-readable name for an event kind ("slot_end", "delivery", ...).
/// Unknown kinds render as "kind_<n>".
[[nodiscard]] std::string event_kind_name(std::uint16_t kind);

/// Write the trace as JSON-lines: one meta line, then one line per counter,
/// histogram, and event. Returns false on I/O failure.
bool export_jsonl(const std::string& path, const Trace& trace);

/// Read a JSONL export back into a Trace; nullopt on I/O or schema errors.
std::optional<Trace> import_jsonl(const std::string& path);

/// Write the event stream in the chrome://tracing JSON-array format.
/// Timestamps are synthetic (derived from round/slot, in microseconds) —
/// the simulation has no wall clock. Returns false on I/O failure.
bool export_chrome(const std::string& path, const Trace& trace);

/// Count traceEvents entries in a chrome export (round-trip check; the
/// chrome format is write-only otherwise). Nullopt on I/O failure.
std::optional<std::uint64_t> count_chrome_events(const std::string& path);

}  // namespace udwn
