// Obs — the single handle the engine takes for all observability.
//
// EngineConfig::obs (and, pass-through, SlotWorkspaceConfig::obs) is a raw
// `Obs*` that defaults to nullptr. Every instrumentation site in the engine,
// channel, gain table, and task pool is a branch on that pointer; when it is
// null the cost is one predictable-not-taken branch per site, no allocation,
// and the simulation trace is bit-identical to an obs-free build (the
// determinism audit's obs-on row and tests/test_engine_workspace.cpp pin
// this down). One Obs may observe several engine runs; counters accumulate
// across them.
//
// The handle pre-registers every engine metric at construction so the hot
// path only ever touches integer ids (see MetricsRegistry's register-once
// rule). Aggregation (snapshot(), write()) is only valid at quiescent
// points — between Engine::step calls or after a run.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace udwn {

struct ObsConfig {
  /// Trace ring capacity per writer thread (events; 24 bytes each).
  std::size_t ring_capacity = std::size_t{1} << 16;
  /// When false, no trace events are emitted (counters still accumulate);
  /// use for metrics-only runs where even ring writes are unwanted.
  bool events = true;
  /// Poll every protocol's obs_state() once per round and emit a
  /// state-transition event on change. This is the expensive tier of the
  /// handle — one virtual call per node per round, O(n) on top of a slot
  /// pipeline that is otherwise sublinear in quiet regions — so it is off
  /// by default; the 5% overhead gate (tools/obs_overhead_check.py) covers
  /// the default tier, and BM_EngineRoundObsStates documents this one.
  bool state_transitions = false;
  /// Emit a kShardSpan trace event from each pool worker that executes an
  /// interference-field shard (sharded slot pipeline only). Off by default:
  /// worker-side events land in per-thread rings whose merge order is
  /// scheduling-dependent, so the default trace stream stays bit-identical
  /// across thread counts (the obs-on audit row relies on this). Turn on
  /// for udwn_trace's per-worker shard-timing view.
  bool worker_spans = false;
};

/// Ids of every metric the engine layers write. Registered once in the Obs
/// constructor; instrumentation sites index straight into the registry.
struct EngineCounterIds {
  // Engine (per slot / per round, engine thread).
  MetricId slots = kInvalidMetric;
  MetricId rounds = kInvalidMetric;
  MetricId transmissions = kInvalidMetric;
  MetricId deliveries = kInvalidMetric;
  MetricId mass_deliveries = kInvalidMetric;
  MetricId collisions = kInvalidMetric;
  MetricId clear_slots = kInvalidMetric;
  MetricId state_transitions = kInvalidMetric;
  // Channel decode paths.
  MetricId decode_scatter_slots = kInvalidMetric;
  MetricId decode_gather_slots = kInvalidMetric;
  // GainTable (published as per-round deltas by the engine).
  MetricId gain_hits = kInvalidMetric;
  MetricId gain_misses = kInvalidMetric;
  MetricId gain_evictions = kInvalidMetric;
  MetricId gain_fills = kInvalidMetric;
  MetricId gain_fallbacks = kInvalidMetric;
  MetricId gain_disabled_binds = kInvalidMetric;
  // TaskPool (published as per-round deltas by the engine).
  MetricId pool_jobs = kInvalidMetric;
  MetricId pool_chunks = kInvalidMetric;
  MetricId pool_idle_ns = kInvalidMetric;
  MetricId pool_wait_ns = kInvalidMetric;
  // Histograms.
  MetricId hist_contention = kInvalidMetric;  // transmitters per data slot
  MetricId hist_deliveries = kInvalidMetric;  // deliveries per data slot
};

class Obs {
 public:
  explicit Obs(ObsConfig config = {});
  Obs(const Obs&) = delete;
  Obs& operator=(const Obs&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] TraceSink& trace() { return trace_; }
  [[nodiscard]] const EngineCounterIds& ids() const { return ids_; }
  [[nodiscard]] bool events_enabled() const { return config_.events; }
  [[nodiscard]] const ObsConfig& config() const { return config_; }

  /// Hot-path helper: emit iff event tracing is on.
  void emit(const TraceEvent& event) {
    if (config_.events) trace_.emit(event);
  }

  /// Merge everything into a Trace (quiescent points only).
  [[nodiscard]] Trace snapshot() const;

  /// snapshot() + write_trace_file(). Returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  ObsConfig config_;
  MetricsRegistry metrics_;
  TraceSink trace_;
  EngineCounterIds ids_;
};

}  // namespace udwn
