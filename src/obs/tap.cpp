#include "obs/tap.h"

#include <cinttypes>

#include "common/env.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace udwn {

MetricsTap MetricsTap::from_env() {
  if (const auto period = env_int("UDWN_METRICS_TAP", 1, 1'000'000'000))
    return MetricsTap(static_cast<std::uint64_t>(*period));
  return MetricsTap();
}

void MetricsTap::on_round(Obs& obs, std::uint64_t rounds_completed) {
  if (period_ == 0 || rounds_completed % period_ != 0) return;
  std::FILE* out = out_ != nullptr ? out_ : stderr;
  const MetricsRegistry::Snapshot snap = obs.metrics().snapshot();
  std::fprintf(out, "[metrics-tap] round %" PRIu64, rounds_completed);
  for (const auto& [name, value] : snap.counters) {
    if (value == 0) continue;
    std::fprintf(out, " %s=%" PRIu64, name.c_str(), value);
  }
  if (obs.trace().dropped() != 0)
    std::fprintf(out, " trace.dropped=%" PRIu64, obs.trace().dropped());
  std::fputc('\n', out);
  std::fflush(out);
}

}  // namespace udwn
