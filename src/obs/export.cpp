#include "obs/export.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace udwn {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Extract `"key":<u64>` from a JSON line. The exporter writes flat objects
/// with unambiguous keys, so a substring scan is sufficient for re-import.
bool find_u64(const std::string& line, const char* key, std::uint64_t& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* p = line.c_str() + pos + needle.size();
  char* end = nullptr;
  out = std::strtoull(p, &end, 10);
  return end != p;
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool find_string(const std::string& line, const char* key, std::string& out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const auto start = line.find(needle);
  if (start == std::string::npos) return false;
  std::size_t i = start + needle.size();
  out.clear();
  while (i < line.size() && line[i] != '"') {
    if (line[i] == '\\' && i + 1 < line.size()) {
      ++i;
      switch (line[i]) {
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          // \uXXXX — the escape json_escape emits for control characters.
          // Decode the full BMP form: code points past 0x7f re-encode as
          // UTF-8 so any well-formed escape round-trips, and a malformed
          // one fails the whole parse instead of importing garbage.
          if (i + 4 >= line.size()) return false;
          unsigned code = 0;
          for (int h = 0; h < 4; ++h) {
            const int nibble = hex_value(line[++i]);
            if (nibble < 0) return false;
            code = (code << 4) | static_cast<unsigned>(nibble);
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          // "\\", "\"", "\/" and any future passthrough escape.
          out += line[i];
      }
    } else {
      out += line[i];
    }
    ++i;
  }
  return i < line.size();
}

std::uint16_t event_kind_from_name(const std::string& name) {
  if (name == "slot_end") return static_cast<std::uint16_t>(EventKind::kSlotEnd);
  if (name == "delivery") return static_cast<std::uint16_t>(EventKind::kDelivery);
  if (name == "mass_delivery")
    return static_cast<std::uint16_t>(EventKind::kMassDelivery);
  if (name == "state_transition")
    return static_cast<std::uint16_t>(EventKind::kStateTransition);
  if (name == "round_end")
    return static_cast<std::uint16_t>(EventKind::kRoundEnd);
  if (name == "shard_span")
    return static_cast<std::uint16_t>(EventKind::kShardSpan);
  if (name.rfind("kind_", 0) == 0)
    return static_cast<std::uint16_t>(std::strtoul(name.c_str() + 5, nullptr, 10));
  return 0;
}

}  // namespace

std::string event_kind_name(std::uint16_t kind) {
  switch (static_cast<EventKind>(kind)) {
    case EventKind::kSlotEnd:
      return "slot_end";
    case EventKind::kDelivery:
      return "delivery";
    case EventKind::kMassDelivery:
      return "mass_delivery";
    case EventKind::kStateTransition:
      return "state_transition";
    case EventKind::kRoundEnd:
      return "round_end";
    case EventKind::kShardSpan:
      return "shard_span";
  }
  return "kind_" + std::to_string(kind);
}

bool export_jsonl(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\"type\":\"meta\",\"format\":\"udwn-trace\",\"version\":1"
      << ",\"events\":" << trace.events.size()
      << ",\"dropped\":" << trace.dropped << "}\n";
  for (const auto& [name, value] : trace.counters)
    out << "{\"type\":\"counter\",\"name\":\"" << json_escape(name)
        << "\",\"value\":" << value << "}\n";
  for (const auto& hist : trace.histograms) {
    out << "{\"type\":\"histogram\",\"name\":\"" << json_escape(hist.name)
        << "\",\"count\":" << hist.count << ",\"sum\":" << hist.sum
        << ",\"buckets\":[";
    // Trailing zero buckets are elided; import zero-fills the remainder.
    std::size_t last = hist.buckets.size();
    while (last > 0 && hist.buckets[last - 1] == 0) --last;
    for (std::size_t b = 0; b < last; ++b) {
      if (b > 0) out << ',';
      out << hist.buckets[b];
    }
    out << "]}\n";
  }
  for (const auto& ev : trace.events)
    out << "{\"type\":\"event\",\"kind\":\"" << event_kind_name(ev.kind)
        << "\",\"round\":" << ev.round
        << ",\"slot\":" << static_cast<unsigned>(ev.slot)
        << ",\"ring\":" << static_cast<unsigned>(ev.ring)
        << ",\"node\":" << ev.node << ",\"aux\":" << ev.aux
        << ",\"value\":" << ev.value << "}\n";
  out.flush();
  return out.good();
}

std::optional<Trace> import_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  Trace trace;
  bool saw_meta = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string type;
    if (!find_string(line, "type", type)) return std::nullopt;
    if (type == "meta") {
      saw_meta = true;
      find_u64(line, "dropped", trace.dropped);
    } else if (type == "counter") {
      std::string name;
      std::uint64_t value = 0;
      if (!find_string(line, "name", name) || !find_u64(line, "value", value))
        return std::nullopt;
      trace.counters.emplace_back(std::move(name), value);
    } else if (type == "histogram") {
      MetricsRegistry::HistogramView hist;
      if (!find_string(line, "name", hist.name)) return std::nullopt;
      find_u64(line, "count", hist.count);
      find_u64(line, "sum", hist.sum);
      const auto open = line.find("\"buckets\":[");
      if (open == std::string::npos) return std::nullopt;
      const char* p = line.c_str() + open + std::strlen("\"buckets\":[");
      std::size_t b = 0;
      while (*p != ']' && *p != '\0' && b < hist.buckets.size()) {
        char* end = nullptr;
        hist.buckets[b++] = std::strtoull(p, &end, 10);
        if (end == p) break;
        p = end;
        if (*p == ',') ++p;
      }
      trace.histograms.push_back(std::move(hist));
    } else if (type == "event") {
      std::string kind;
      if (!find_string(line, "kind", kind)) return std::nullopt;
      TraceEvent ev;
      ev.kind = event_kind_from_name(kind);
      std::uint64_t tmp = 0;
      if (find_u64(line, "round", tmp)) ev.round = static_cast<std::uint32_t>(tmp);
      if (find_u64(line, "slot", tmp)) ev.slot = static_cast<std::uint8_t>(tmp);
      if (find_u64(line, "ring", tmp)) ev.ring = static_cast<std::uint8_t>(tmp);
      if (find_u64(line, "node", tmp)) ev.node = static_cast<std::uint32_t>(tmp);
      if (find_u64(line, "aux", tmp)) ev.aux = static_cast<std::uint32_t>(tmp);
      find_u64(line, "value", ev.value);
      trace.events.push_back(ev);
    } else {
      return std::nullopt;
    }
  }
  if (!saw_meta) return std::nullopt;
  return trace;
}

bool export_chrome(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& ev : trace.events) {
    if (!first) out << ',';
    first = false;
    // Synthetic clock: 10 us per round, 5 us per slot. Instant events keep
    // every record visible regardless of zoom.
    const std::uint64_t ts =
        std::uint64_t{ev.round} * 10 + std::uint64_t{ev.slot} * 5;
    out << "\n{\"name\":\"" << event_kind_name(ev.kind)
        << "\",\"ph\":\"i\",\"s\":\"g\",\"ts\":" << ts
        << ",\"pid\":0,\"tid\":" << static_cast<unsigned>(ev.ring)
        << ",\"args\":{\"round\":" << ev.round
        << ",\"slot\":" << static_cast<unsigned>(ev.slot)
        << ",\"node\":" << ev.node << ",\"aux\":" << ev.aux
        << ",\"value\":" << ev.value << "}}";
  }
  out << "\n]}\n";
  out.flush();
  return out.good();
}

std::optional<std::uint64_t> count_chrome_events(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::uint64_t count = 0;
  std::string line;
  while (std::getline(in, line)) {
    // One traceEvents entry per line; each carries exactly one "ph" key.
    std::size_t pos = 0;
    while ((pos = line.find("\"ph\":", pos)) != std::string::npos) {
      ++count;
      pos += 5;
    }
  }
  return count;
}

}  // namespace udwn
