#include "obs/metrics.h"

#include <atomic>

#include "common/contract.h"

namespace udwn {

namespace {

/// Process-wide registry id source: lets the thread_local shard cache tell
/// a new registry from a destroyed one that happened to reuse its address.
std::atomic<std::uint64_t> g_registry_ids{1};

}  // namespace

MetricsRegistry::MetricsRegistry()
    : registry_id_(g_registry_ids.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricId MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i)
    if (counter_names_[i] == name) return static_cast<MetricId>(i);
  if (counter_names_.size() >= kMaxCounters) return kInvalidMetric;
  counter_names_.emplace_back(name);
  return static_cast<MetricId>(counter_names_.size() - 1);
}

MetricId MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < histogram_names_.size(); ++i)
    if (histogram_names_[i] == name) return static_cast<MetricId>(i);
  if (histogram_names_.size() >= kMaxHistograms) return kInvalidMetric;
  histogram_names_.emplace_back(name);
  return static_cast<MetricId>(histogram_names_.size() - 1);
}

MetricsRegistry::Shard& MetricsRegistry::shard() {
  struct Cache {
    std::uint64_t registry_id = 0;
    Shard* shard = nullptr;
  };
  thread_local Cache cache;
  if (cache.registry_id != registry_id_) {
    cache.shard = &acquire_shard();
    cache.registry_id = registry_id_;
  }
  return *cache.shard;
}

MetricsRegistry::Shard& MetricsRegistry::acquire_shard() {
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  return *shards_.back();
}

std::uint64_t MetricsRegistry::total(MetricId id) const {
  if (id == kInvalidMetric) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  UDWN_EXPECT(id < counter_names_.size());
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard->counters[id];
  return sum;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) sum += shard->counters[i];
    snap.counters.emplace_back(counter_names_[i], sum);
  }
  snap.histograms.reserve(histogram_names_.size());
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    HistogramView view;
    view.name = histogram_names_[i];
    for (const auto& shard : shards_) {
      view.sum += shard->hist_sum[i];
      for (std::size_t b = 0; b < kBuckets; ++b)
        view.buckets[b] += shard->hist_buckets[i][b];
    }
    for (const std::uint64_t c : view.buckets) view.count += c;
    snap.histograms.push_back(std::move(view));
  }
  return snap;
}

std::size_t MetricsRegistry::counter_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counter_names_.size();
}

std::size_t MetricsRegistry::histogram_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histogram_names_.size();
}

std::size_t MetricsRegistry::shard_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_.size();
}

}  // namespace udwn
