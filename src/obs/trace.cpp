#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>

#include "common/contract.h"

namespace udwn {

namespace {

std::atomic<std::uint64_t> g_sink_ids{1};

constexpr char kMagic[8] = {'U', 'D', 'W', 'N', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kVersion = 1;

/// Caps a corrupt header before it turns into a giant allocation.
constexpr std::uint64_t kMaxFileEvents = std::uint64_t{1} << 32;
constexpr std::uint32_t kMaxFileMetrics = 1u << 16;
constexpr std::uint32_t kMaxNameLen = 1u << 12;

bool write_bytes(std::FILE* f, const void* data, std::size_t size) {
  return std::fwrite(data, 1, size, f) == size;
}

bool read_bytes(std::FILE* f, void* data, std::size_t size) {
  return std::fread(data, 1, size, f) == size;
}

template <typename T>
bool write_pod(std::FILE* f, const T& value) {
  return write_bytes(f, &value, sizeof(T));
}

template <typename T>
bool read_pod(std::FILE* f, T& value) {
  return read_bytes(f, &value, sizeof(T));
}

bool write_name(std::FILE* f, const std::string& name) {
  const auto len = static_cast<std::uint32_t>(name.size());
  return write_pod(f, len) && write_bytes(f, name.data(), name.size());
}

bool read_name(std::FILE* f, std::string& name) {
  std::uint32_t len = 0;
  if (!read_pod(f, len) || len > kMaxNameLen) return false;
  name.resize(len);
  return read_bytes(f, name.data(), len);
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

TraceSink::TraceSink(Config config)
    : sink_id_(g_sink_ids.fetch_add(1, std::memory_order_relaxed)),
      config_(config) {
  UDWN_EXPECT(config_.ring_capacity > 0);
}

TraceSink::~TraceSink() = default;

TraceSink::Ring& TraceSink::acquire_ring() {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.push_back(std::make_unique<Ring>());
  rings_.back()->events.reserve(config_.ring_capacity);
  return *rings_.back();
}

std::vector<TraceEvent> TraceSink::collect() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> merged;
  std::size_t total = 0;
  for (const auto& ring : rings_) total += ring->events.size();
  merged.reserve(total);
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    const Ring& ring = *rings_[r];
    // Oldest-first: once wrapped, `next` points at the oldest record.
    for (std::size_t i = 0; i < ring.events.size(); ++i) {
      const std::size_t idx =
          ring.events.size() == config_.ring_capacity
              ? (ring.next + i) % config_.ring_capacity
              : i;
      TraceEvent event = ring.events[idx];
      event.ring = static_cast<std::uint8_t>(r);
      merged.push_back(event);
    }
  }
  // Stable: within one (round, slot, ring) the per-ring emission order is
  // already chronological and must survive the merge.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.round != b.round) return a.round < b.round;
                     if (a.slot != b.slot) return a.slot < b.slot;
                     return a.ring < b.ring;
                   });
  return merged;
}

std::uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped;
  return total;
}

std::size_t TraceSink::ring_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rings_.size();
}

bool write_trace_file(const std::string& path, const Trace& trace) {
  FileHandle f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  if (!write_bytes(f.get(), kMagic, sizeof(kMagic))) return false;
  if (!write_pod(f.get(), kVersion)) return false;
  const auto counter_count = static_cast<std::uint32_t>(trace.counters.size());
  const auto histogram_count =
      static_cast<std::uint32_t>(trace.histograms.size());
  const std::uint32_t reserved = 0;
  const auto event_count = static_cast<std::uint64_t>(trace.events.size());
  if (!write_pod(f.get(), counter_count) ||
      !write_pod(f.get(), histogram_count) || !write_pod(f.get(), reserved) ||
      !write_pod(f.get(), event_count) || !write_pod(f.get(), trace.dropped))
    return false;
  for (const auto& [name, value] : trace.counters)
    if (!write_name(f.get(), name) || !write_pod(f.get(), value)) return false;
  for (const auto& hist : trace.histograms) {
    if (!write_name(f.get(), hist.name) || !write_pod(f.get(), hist.sum))
      return false;
    if (!write_bytes(f.get(), hist.buckets.data(),
                     hist.buckets.size() * sizeof(std::uint64_t)))
      return false;
  }
  if (!trace.events.empty() &&
      !write_bytes(f.get(), trace.events.data(),
                   trace.events.size() * sizeof(TraceEvent)))
    return false;
  return std::fflush(f.get()) == 0;
}

std::optional<Trace> read_trace_file(const std::string& path) {
  FileHandle f(std::fopen(path.c_str(), "rb"));
  if (!f) return std::nullopt;
  char magic[8];
  if (!read_bytes(f.get(), magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return std::nullopt;
  std::uint32_t version = 0;
  if (!read_pod(f.get(), version) || version != kVersion) return std::nullopt;
  std::uint32_t counter_count = 0;
  std::uint32_t histogram_count = 0;
  std::uint32_t reserved = 0;
  std::uint64_t event_count = 0;
  Trace trace;
  if (!read_pod(f.get(), counter_count) ||
      !read_pod(f.get(), histogram_count) || !read_pod(f.get(), reserved) ||
      !read_pod(f.get(), event_count) || !read_pod(f.get(), trace.dropped))
    return std::nullopt;
  if (counter_count > kMaxFileMetrics || histogram_count > kMaxFileMetrics ||
      event_count > kMaxFileEvents)
    return std::nullopt;
  trace.counters.resize(counter_count);
  for (auto& [name, value] : trace.counters)
    if (!read_name(f.get(), name) || !read_pod(f.get(), value))
      return std::nullopt;
  trace.histograms.resize(histogram_count);
  for (auto& hist : trace.histograms) {
    if (!read_name(f.get(), hist.name) || !read_pod(f.get(), hist.sum))
      return std::nullopt;
    if (!read_bytes(f.get(), hist.buckets.data(),
                    hist.buckets.size() * sizeof(std::uint64_t)))
      return std::nullopt;
    hist.count = 0;
    for (const std::uint64_t c : hist.buckets) hist.count += c;
  }
  trace.events.resize(event_count);
  if (event_count > 0 &&
      !read_bytes(f.get(), trace.events.data(),
                  trace.events.size() * sizeof(TraceEvent)))
    return std::nullopt;
  return trace;
}

}  // namespace udwn
