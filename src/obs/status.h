// StatusBoard — live-readable named counters for long-lived hosts.
//
// MetricsRegistry is built for the engine hot path: per-thread shards,
// aggregation only at quiescent points. A serving daemon has the opposite
// profile — counters change at request granularity (cold path) but must be
// READABLE AT ANY MOMENT, concurrently with writers, because a `status`
// request can arrive mid-run. StatusBoard is that complement: every
// operation takes one mutex, so add() and snapshot() are safe from any
// thread at any time, and the rates involved (requests per second, not
// events per slot) make the lock irrelevant.
//
// The intended wiring (src/svc/service.cpp) keeps both layers honest: each
// service worker owns a private Obs whose MetricsRegistry the engine writes
// shard-locally during a request, and at every quiescent point (a completed
// trial block) the worker folds the registry's counter DELTAS into the
// shared StatusBoard. The status endpoint then reads the board — live
// aggregated MetricsRegistry counters without ever violating the
// registry's quiescence contract.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace udwn {

class StatusBoard {
 public:
  StatusBoard() = default;
  StatusBoard(const StatusBoard&) = delete;
  StatusBoard& operator=(const StatusBoard&) = delete;

  /// Add `delta` to the counter named `name`, creating it at zero on first
  /// use. Thread-safe; cold path only (one mutex + one linear name probe).
  void add(std::string_view name, std::uint64_t delta);

  /// Current value of `name` (0 when never written). Thread-safe.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;

  /// All counters in first-write order. Safe to call concurrently with
  /// writers — that is the point of this class.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> snapshot()
      const;

  /// Fold the counter deltas between `previous` and `current` registry
  /// snapshots into this board (same counter names), then advance
  /// `previous` to `current`. Both snapshots must come from the same
  /// registry at quiescent points; counters are monotonic, so current -
  /// previous is the per-window contribution.
  void fold_registry_delta(const MetricsRegistry::Snapshot& current,
                           MetricsRegistry::Snapshot* previous);

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
};

}  // namespace udwn
