#include "obs/obs.h"

namespace udwn {

Obs::Obs(ObsConfig config)
    : config_(config), trace_(TraceSink::Config{config.ring_capacity}) {
  ids_.slots = metrics_.counter("engine.slots");
  ids_.rounds = metrics_.counter("engine.rounds");
  ids_.transmissions = metrics_.counter("engine.transmissions");
  ids_.deliveries = metrics_.counter("engine.deliveries");
  ids_.mass_deliveries = metrics_.counter("engine.mass_deliveries");
  ids_.collisions = metrics_.counter("engine.collisions_sensed");
  ids_.clear_slots = metrics_.counter("engine.clear_slots");
  ids_.state_transitions = metrics_.counter("engine.state_transitions");
  ids_.decode_scatter_slots = metrics_.counter("channel.decode_scatter_slots");
  ids_.decode_gather_slots = metrics_.counter("channel.decode_gather_slots");
  ids_.gain_hits = metrics_.counter("gain_table.hits");
  ids_.gain_misses = metrics_.counter("gain_table.misses");
  ids_.gain_evictions = metrics_.counter("gain_table.evictions");
  ids_.gain_fills = metrics_.counter("gain_table.fills");
  ids_.gain_fallbacks = metrics_.counter("gain_table.fallbacks");
  ids_.gain_disabled_binds = metrics_.counter("gain_table.disabled_binds");
  ids_.pool_jobs = metrics_.counter("task_pool.jobs");
  ids_.pool_chunks = metrics_.counter("task_pool.chunks");
  ids_.pool_idle_ns = metrics_.counter("task_pool.worker_idle_ns");
  ids_.pool_wait_ns = metrics_.counter("task_pool.caller_wait_ns");
  ids_.hist_contention = metrics_.histogram("engine.contention_per_slot");
  ids_.hist_deliveries = metrics_.histogram("engine.deliveries_per_slot");
}

Trace Obs::snapshot() const {
  Trace trace;
  MetricsRegistry::Snapshot snap = metrics_.snapshot();
  trace.counters = std::move(snap.counters);
  trace.histograms = std::move(snap.histograms);
  trace.events = trace_.collect();
  trace.dropped = trace_.dropped();
  return trace;
}

bool Obs::write(const std::string& path) const {
  return write_trace_file(path, snapshot());
}

}  // namespace udwn
