// Compact binary round-event tracing.
//
// TraceSink collects fixed-size 24-byte records into per-thread ring
// buffers: emit() appends to the calling thread's ring (thread-private
// memory, no locks), and collect() merges the rings post-run. A full ring
// overwrites its oldest records (the trace keeps the most recent events)
// and counts the drops, so a long run degrades to a bounded suffix instead
// of unbounded memory.
//
// Determinism contract: the merged event stream is ordered by
// (round, slot, ring, emission order). The engine emits every event from
// the slot-serial sections of Engine::step (one thread, deterministic
// order), so the stream is bit-identical across thread counts and kernel
// choices — tests/test_obs.cpp and the determinism audit's obs-on
// configuration enforce this. Pool workers may emit too (their ring is
// created on first use), but cross-ring order within one (round, slot) is
// registration order, which is scheduling-dependent — worker-side
// instrumentation should use MetricsRegistry counters instead.
//
// The on-disk format (write_trace_file/read_trace_file) bundles the final
// counter/histogram aggregates with the event stream so the inspector tool
// needs a single file; see docs/OBSERVABILITY.md for the layout.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace udwn {

/// What a trace record describes. Values are part of the on-disk format —
/// append, never renumber.
enum class EventKind : std::uint16_t {
  /// One slot resolved: node = #transmitters, aux = #deliveries,
  /// value = (#collisions-sensed << 32) | #mass-deliveries.
  kSlotEnd = 1,
  /// One node decoded a message: node = receiver, aux = sender,
  /// value = payload tag.
  kDelivery = 2,
  /// A transmitter mass-delivered: node = transmitter, aux = 0, value = 0.
  kMassDelivery = 3,
  /// A protocol's obs_state() changed between rounds: node = the node,
  /// aux = previous state, value = new state.
  kStateTransition = 4,
  /// End of a global round: node = #alive nodes, aux = 0,
  /// value = #state transitions this round.
  kRoundEnd = 5,
  /// One interference-field shard executed on a pool worker
  /// (ObsConfig::worker_spans): node = first listener column of the shard,
  /// aux = #listener blocks, value = wall-clock duration in ns. Emitted
  /// from worker threads — ring order within a (round, slot) is
  /// scheduling-dependent (see the determinism contract above), which is
  /// why the knob is opt-in and the span is a diagnostic, never an input.
  kShardSpan = 6,
};

/// One fixed-size trace record. Packed to 24 bytes; written to disk as-is
/// (native endianness — traces are a single-host diagnostic artifact).
struct TraceEvent {
  std::uint32_t round = 0;
  std::uint16_t kind = 0;  // EventKind
  std::uint8_t slot = 0;   // Slot::Data = 0, Slot::Notify = 1
  std::uint8_t ring = 0;   // writer ring index (0 = first registered)
  std::uint32_t node = 0;
  std::uint32_t aux = 0;
  std::uint64_t value = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};
static_assert(sizeof(TraceEvent) == 24, "on-disk record layout");

/// A fully merged trace: final metric aggregates + the event stream.
struct Trace {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<MetricsRegistry::HistogramView> histograms;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

class TraceSink {
  /// Storage of one writer thread. Declared first so Writer below can hold
  /// a pointer; still private — only TraceSink hands these out.
  struct Ring {
    std::vector<TraceEvent> events;  // reserved to capacity on creation
    std::size_t next = 0;            // write cursor once wrapped
    std::uint64_t dropped = 0;
  };

  /// Shared append: fill until capacity, then overwrite-oldest with a
  /// compare-based cursor wrap (a long run lands on the wrap path every
  /// emit, so no division).
  static void append(Ring& r, std::size_t capacity, const TraceEvent& event) {
    if (r.events.size() < capacity) {
      r.events.push_back(event);
      return;
    }
    r.events[r.next] = event;
    if (++r.next == capacity) r.next = 0;
    ++r.dropped;
  }

 public:
  struct Config {
    /// Events retained per writer ring; the storage (capacity * 24 bytes)
    /// is reserved when the ring is created, so steady-state emits never
    /// allocate.
    std::size_t ring_capacity = std::size_t{1} << 16;
  };

  TraceSink() : TraceSink(Config{}) {}
  explicit TraceSink(Config config);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;
  ~TraceSink();

  /// Hot path: append one record to this thread's ring. `event.ring` is
  /// overwritten with the ring index at collect() time. Inline — the engine
  /// emits one event per delivery, so even a call into another TU shows up
  /// at n = 2048.
  void emit(TraceEvent event) { append(ring(), config_.ring_capacity, event); }

  /// Burst writer: binds the calling thread's ring once, so a run of emits
  /// (e.g. one engine slot's deliveries) skips the per-emit thread_local
  /// lookup. Default-constructed it is inert — emit() is a no-op — which
  /// lets callers hoist the events-enabled decision out of hot loops.
  /// Single-thread use; do not outlive the sink or the emitting burst.
  class Writer {
   public:
    Writer() = default;
    void emit(const TraceEvent& event) {
      if (ring_ != nullptr) append(*ring_, capacity_, event);
    }

   private:
    friend class TraceSink;
    Writer(Ring* ring, std::size_t capacity)
        : ring_(ring), capacity_(capacity) {}
    Ring* ring_ = nullptr;
    std::size_t capacity_ = 0;
  };

  /// A Writer bound to the calling thread's ring.
  [[nodiscard]] Writer writer() {
    return Writer(&ring(), config_.ring_capacity);
  }

  /// Merge all rings into (round, slot, ring, emission-order) order.
  /// Quiescent points only (same rule as MetricsRegistry aggregation).
  [[nodiscard]] std::vector<TraceEvent> collect() const;

  /// Records overwritten across all rings.
  [[nodiscard]] std::uint64_t dropped() const;

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::size_t ring_count() const;

 private:
  /// This thread's ring via a thread_local cache keyed by the sink id —
  /// same scheme as MetricsRegistry::shard().
  Ring& ring() {
    struct Cache {
      std::uint64_t sink_id = 0;
      Ring* ring = nullptr;
    };
    thread_local Cache cache;
    if (cache.sink_id != sink_id_) {
      cache.ring = &acquire_ring();
      cache.sink_id = sink_id_;
    }
    return *cache.ring;
  }

  Ring& acquire_ring();

  const std::uint64_t sink_id_;
  Config config_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// Write a merged trace as the UDWNTRC1 binary format. Returns false on I/O
/// failure.
bool write_trace_file(const std::string& path, const Trace& trace);

/// Read a UDWNTRC1 file back; nullopt on I/O or format errors.
std::optional<Trace> read_trace_file(const std::string& path);

}  // namespace udwn
