#include "obs/status.h"

namespace udwn {

void StatusBoard::add(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, value] : counters_) {
    if (key == name) {
      value += delta;
      return;
    }
  }
  counters_.emplace_back(std::string(name), delta);
}

std::uint64_t StatusBoard::value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, value] : counters_)
    if (key == name) return value;
  return 0;
}

std::vector<std::pair<std::string, std::uint64_t>> StatusBoard::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void StatusBoard::fold_registry_delta(
    const MetricsRegistry::Snapshot& current,
    MetricsRegistry::Snapshot* previous) {
  for (const auto& [name, value] : current.counters) {
    std::uint64_t before = 0;
    for (const auto& [prev_name, prev_value] : previous->counters) {
      if (prev_name == name) {
        before = prev_value;
        break;
      }
    }
    if (value > before) add(name, value - before);
  }
  *previous = current;
}

}  // namespace udwn
