// MetricsRegistry — register-once counters and bounded histograms with
// per-thread storage and aggregate-on-demand reads.
//
// Design constraints (the engine's hot path dictates them):
//
//   * Register-once, increment-forever: metric registration (name lookup,
//     id assignment) takes a mutex and may allocate; it happens at handle
//     setup time, never per slot. The hot path works purely on integer ids.
//   * No locks, no atomics on the hot path: each writing thread owns a
//     private shard (a flat array of counter cells and histogram buckets)
//     found through a thread_local cache, so add()/record() are plain
//     loads/stores on thread-private memory.
//   * Bounded: a shard is a fixed-size block (kMaxCounters cells +
//     kMaxHistograms * kBuckets buckets), so per-thread cost is known up
//     front and a steady-state increment never allocates.
//   * Aggregate-on-demand: total()/snapshot() sum the shards under the
//     registration mutex. Aggregation must only run at quiescent points
//     (end of run, or between TaskPool jobs) — concurrent writers are not
//     torn-read-safe by design, and the engine's usage guarantees quiescence
//     (counters are written either from the engine thread or from pool
//     workers that synchronize through TaskPool::run's join).
//
// Histograms are power-of-two bucketed: value v lands in bucket
// bit_width(v) (0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...), which
// bounds any uint64 distribution in kBuckets = 65 cells with no
// configuration. Each histogram also tracks count-weighted sum for means.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace udwn {

/// Handle to a registered counter or histogram. Plain index; valid for the
/// lifetime of the registry that issued it.
using MetricId = std::uint32_t;
inline constexpr MetricId kInvalidMetric = 0xffffffffu;

class MetricsRegistry {
 public:
  static constexpr std::size_t kMaxCounters = 128;
  static constexpr std::size_t kMaxHistograms = 32;
  /// bit_width of a uint64 is in [0, 64].
  static constexpr std::size_t kBuckets = 65;

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  /// Register (or look up) a counter by name. Same name -> same id.
  /// Returns kInvalidMetric when kMaxCounters distinct names exist already.
  MetricId counter(std::string_view name);

  /// Register (or look up) a histogram by name. Same name -> same id.
  MetricId histogram(std::string_view name);

  /// Hot path: add `delta` to counter `id` on this thread's shard.
  void add(MetricId id, std::uint64_t delta) {
    if (id == kInvalidMetric) return;
    shard().counters[id] += delta;
  }

  /// Hot path: record one histogram observation.
  void record(MetricId id, std::uint64_t value) {
    if (id == kInvalidMetric) return;
    Shard& s = shard();
    s.hist_buckets[id][std::bit_width(value)] += 1;
    s.hist_sum[id] += value;
  }

  /// Aggregated counter value across all shards. Quiescent points only.
  [[nodiscard]] std::uint64_t total(MetricId id) const;

  struct HistogramView {
    std::string name;
    std::uint64_t count = 0;  // total observations
    std::uint64_t sum = 0;    // sum of observed values
    std::array<std::uint64_t, kBuckets> buckets{};
  };

  struct Snapshot {
    /// (name, aggregated value) in registration order.
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<HistogramView> histograms;
  };

  /// Aggregate every metric across all shards. Quiescent points only.
  [[nodiscard]] Snapshot snapshot() const;

  /// Number of registered counters / histograms / writer shards (tests).
  [[nodiscard]] std::size_t counter_count() const;
  [[nodiscard]] std::size_t histogram_count() const;
  [[nodiscard]] std::size_t shard_count() const;

 private:
  struct Shard {
    std::array<std::uint64_t, kMaxCounters> counters{};
    std::array<std::array<std::uint64_t, kBuckets>, kMaxHistograms>
        hist_buckets{};
    std::array<std::uint64_t, kMaxHistograms> hist_sum{};
  };

  /// This thread's shard, created on first use (the only allocating step on
  /// the write path; engines hit it during warm-up).
  Shard& shard();
  Shard& acquire_shard();

  const std::uint64_t registry_id_;  // distinguishes registries across reuse
  mutable std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> histogram_names_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace udwn
