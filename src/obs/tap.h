// Live in-run metrics tap: periodic aggregated counter snapshots at round
// boundaries, so a multi-minute scenario is observable before it finishes.
//
// Enabled with UDWN_METRICS_TAP=<period-in-rounds> (strictly parsed; an
// invalid value warns and disables the tap). Every period-th completed
// round the engine — at a quiescent point, after the slot kernels joined —
// prints one line with every nonzero counter to stderr, keeping stdout
// clean for the experiment tables and UDWN_JSON.
#pragma once

#include <cstdint>
#include <cstdio>

namespace udwn {

class Obs;

class MetricsTap {
 public:
  /// Disabled tap: on_round() never fires.
  MetricsTap() = default;
  /// Print every `period_rounds` completed rounds to `out` (nullptr =
  /// stderr, resolved at print time so tests can redirect).
  explicit MetricsTap(std::uint64_t period_rounds, std::FILE* out = nullptr)
      : period_(period_rounds), out_(out) {}
  /// Configure from UDWN_METRICS_TAP; unset or invalid = disabled.
  [[nodiscard]] static MetricsTap from_env();

  [[nodiscard]] bool enabled() const { return period_ != 0; }

  /// Round-boundary hook. Call only at quiescent points (snapshot()
  /// aggregates the per-thread shards); `rounds_completed` counts the
  /// calling engine's completed rounds, 1-based.
  void on_round(Obs& obs, std::uint64_t rounds_completed);

 private:
  std::uint64_t period_ = 0;
  std::FILE* out_ = nullptr;
};

}  // namespace udwn
