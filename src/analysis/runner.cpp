#include "analysis/runner.h"

#include "common/contract.h"

namespace udwn {

std::vector<std::unique_ptr<Protocol>> make_protocols(
    std::size_t n, const ProtocolFactory& factory) {
  std::vector<std::unique_ptr<Protocol>> protocols;
  protocols.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    protocols.push_back(factory(NodeId(static_cast<std::uint32_t>(v))));
    UDWN_ENSURE(protocols.back() != nullptr);
  }
  return protocols;
}

TrackResult track_until_all(
    Engine& engine,
    const std::function<bool(const Protocol&, NodeId)>& done,
    Round max_rounds) {
  const std::size_t n = engine.network().size();
  TrackResult result;
  result.completion.assign(n, -1);

  auto sweep = [&]() {
    bool all = true;
    for (NodeId v : engine.network().alive_nodes()) {
      if (done(engine.protocol(v), v)) {
        if (result.completion[v.value] < 0)
          result.completion[v.value] = engine.round();
      } else {
        // Churn may revive a node in an un-done state; its earlier
        // completion no longer stands.
        result.completion[v.value] = -1;
        all = false;
      }
    }
    return all;
  };

  result.all_done = sweep();
  while (!result.all_done && engine.round() < max_rounds) {
    engine.step();
    result.all_done = sweep();
  }
  result.rounds = engine.round();
  return result;
}

std::vector<double> finite_completions(const TrackResult& result) {
  std::vector<double> out;
  for (Round r : result.completion)
    if (r >= 0) out.push_back(static_cast<double>(r));
  return out;
}

}  // namespace udwn
