#include "analysis/recorders.h"

#include "common/contract.h"

namespace udwn {

DeliveryRecorder::DeliveryRecorder(std::size_t n) : first_(n, -1) {}

void DeliveryRecorder::on_slot(Round round, Slot slot,
                               const SlotOutcome& outcome,
                               const Engine& /*engine*/) {
  if (slot != Slot::Data) return;
  transmissions_ += static_cast<std::int64_t>(outcome.transmitters.size());
  for (NodeId u : outcome.transmitters) {
    if (outcome.clear[u.value]) ++clear_;
    if (outcome.mass_delivered[u.value]) {
      ++total_;
      if (first_[u.value] < 0) first_[u.value] = round;
    }
  }
}

InformedRecorder::InformedRecorder(std::size_t n, std::vector<NodeId> sources)
    : informed_(n, -1) {
  for (NodeId s : sources) {
    UDWN_EXPECT(s.value < n);
    if (informed_[s.value] < 0) {
      informed_[s.value] = 0;
      ++count_;
    }
  }
}

void InformedRecorder::on_slot(Round round, Slot slot,
                               const SlotOutcome& outcome,
                               const Engine& /*engine*/) {
  if (slot != Slot::Data) return;  // payload travels in the data slot
  for (std::size_t v = 0; v < informed_.size(); ++v) {
    if (informed_[v] >= 0) continue;
    const NodeId sender = outcome.decoded_from[v];
    if (!sender.valid()) continue;
    // Only decoding an *informed* sender spreads the payload.
    if (informed_[sender.value] >= 0 && informed_[sender.value] <= round) {
      informed_[v] = round + 1;
      ++count_;
    }
  }
}

bool InformedRecorder::all_informed(const Network& network) const {
  for (NodeId v : network.alive_nodes())
    if (informed_[v.value] < 0) return false;
  return true;
}

}  // namespace udwn
