// Experiment-harness glue: build per-node protocol vectors, drive an engine
// until a per-node predicate holds everywhere, and collect per-node
// completion rounds.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "sim/engine.h"
#include "sim/protocol.h"

namespace udwn {

/// One protocol instance per node id.
using ProtocolFactory = std::function<std::unique_ptr<Protocol>(NodeId)>;

std::vector<std::unique_ptr<Protocol>> make_protocols(
    std::size_t n, const ProtocolFactory& factory);

struct TrackResult {
  /// Global round (1-based: value r means "after r rounds") at which the
  /// predicate first held for each node; -1 if never within the budget.
  std::vector<Round> completion;
  /// The predicate held for every alive node before the budget ran out.
  bool all_done = false;
  /// Rounds executed.
  Round rounds = 0;
};

/// Step `engine` until `done(protocol, id)` holds for every alive node, or
/// `max_rounds` elapse. Nodes' completion rounds are recorded the first time
/// their predicate holds (and reset if churn revives them un-done).
TrackResult track_until_all(
    Engine& engine,
    const std::function<bool(const Protocol&, NodeId)>& done,
    Round max_rounds);

/// Completion rounds of the nodes that did finish, as doubles (for
/// Summary/fit helpers). Skips -1 entries and optionally dead nodes.
std::vector<double> finite_completions(const TrackResult& result);

}  // namespace udwn
