#include "analysis/scenario.h"

#include <cmath>
#include <queue>

#include "common/contract.h"

namespace udwn {

Scenario::Scenario(std::vector<Vec2> positions, const ScenarioConfig& config)
    : config_(config),
      metric_(std::make_unique<EuclideanMetric>(std::move(positions))) {
  build(config);
}

Scenario::Scenario(std::unique_ptr<QuasiMetric> metric,
                   const ScenarioConfig& config)
    : config_(config), metric_(std::move(metric)) {
  UDWN_EXPECT(metric_ != nullptr);
  build(config);
}

void Scenario::build(const ScenarioConfig& config) {
  UDWN_EXPECT(config.radius > 0);
  UDWN_EXPECT(config.epsilon > 0 && config.epsilon < 1);
  pathloss_ = std::make_unique<PathLoss>(
      config.power, config.zeta, config.near_limit_fraction * config.radius);

  const double r = config.radius;
  switch (config.model) {
    case ModelKind::Sinr: {
      // Derive the noise floor so the clear-channel range is exactly R.
      const double noise =
          config.power / (config.sinr_beta * std::pow(r, config.zeta));
      model_ = std::make_unique<SinrReception>(*pathloss_, config.sinr_beta,
                                               noise);
      break;
    }
    case ModelKind::Udg:
      model_ = std::make_unique<UdgReception>(r);
      break;
    case ModelKind::Qudg:
      model_ = std::make_unique<QudgReception>(r, config.qudg_outer * r);
      break;
    case ModelKind::Protocol:
      model_ = std::make_unique<ProtocolReception>(
          r, config.protocol_interference * r);
      break;
    case ModelKind::SuccClearOnly: {
      const SuccClearParams params{
          .rho_c = config.succ_clear_rho,
          .i_c = config.succ_clear_ic_fraction * config.power /
                 std::pow(r, config.zeta)};
      model_ = std::make_unique<SuccClearOnlyReception>(r, config.epsilon,
                                                        params);
      break;
    }
  }
  // Model-derived range must hit the configured R (exact for graph models,
  // algebraic identity for SINR).
  UDWN_ENSURE(std::abs(model_->max_range() - r) < 1e-9 * r);

  channel_ =
      std::make_unique<Channel>(*metric_, *pathloss_, *model_, config.epsilon);
  network_ = std::make_unique<Network>(*metric_);
}

EuclideanMetric* Scenario::euclidean() {
  return dynamic_cast<EuclideanMetric*>(metric_.get());
}

CarrierSensing Scenario::sensing_local() const {
  return CarrierSensing::for_model(*model_, *pathloss_, config_.epsilon);
}

CarrierSensing Scenario::sensing_broadcast() const {
  const double eps = config_.epsilon;
  return CarrierSensing::with_precisions(*model_, *pathloss_, eps, eps / 2,
                                         eps * model_->max_range() / 2);
}

CarrierSensing Scenario::sensing_domset() const {
  const double eps = config_.epsilon;
  return CarrierSensing::with_precisions(*model_, *pathloss_, eps, eps / 2,
                                         eps * model_->max_range() / 4);
}

std::vector<NodeId> Scenario::neighbors(NodeId u) const {
  return channel_->neighbors(u, network_->alive_mask());
}

std::size_t Scenario::max_degree() const {
  std::size_t best = 0;
  for (NodeId v : network_->alive_nodes())
    best = std::max(best, neighbors(v).size());
  return best;
}

std::vector<int> Scenario::hop_distances(NodeId source) const {
  UDWN_EXPECT(source.value < metric_->size());
  std::vector<int> dist(metric_->size(), -1);
  if (!network_->alive(source)) return dist;
  dist[source.value] = 0;
  std::queue<NodeId> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : neighbors(u)) {
      if (dist[v.value] < 0) {
        dist[v.value] = dist[u.value] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

}  // namespace udwn
