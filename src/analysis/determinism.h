// Determinism auditing — turns "bit-for-bit deterministic under a fixed
// seed" from an assumption into a checked invariant.
//
// Every guarantee the repo reproduces (Thms 1-3) is measured from seeded
// runs; a single nondeterministic tie-break (iteration over a hashed
// container, an accidental std::random_device, address-dependent ordering)
// silently invalidates an adversarial schedule without failing any test.
// The auditor executes the same scenario closure twice, folds the full
// ground-truth event trace into a chained per-round hash, and reports the
// first round at which the two executions diverge.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/engine.h"

namespace udwn {

/// Recorder folding every SlotOutcome — transmitter set, interference field
/// (bit-exact), decode decisions, mass-delivery and clear flags — plus the
/// per-node transmit probabilities and clock firings into a running FNV-1a
/// hash, chained and sampled at every round boundary.
class TraceHashRecorder final : public Recorder {
 public:
  void on_slot(Round round, Slot slot, const SlotOutcome& outcome,
               const Engine& engine) override;
  void on_round_end(Round round, const Engine& engine) override;

  /// Chained trace hash after each completed round; index i = state after
  /// round i+1. A prefix match up to round r means the two executions were
  /// observably identical through round r.
  [[nodiscard]] const std::vector<std::uint64_t>& round_hashes() const {
    return round_hashes_;
  }
  /// Hash of the whole trace so far.
  [[nodiscard]] std::uint64_t final_hash() const { return hash_; }

 private:
  void mix_u64(std::uint64_t x);
  void mix_double(double x);

  std::uint64_t hash_ = 14695981039346656037ull;  // FNV-1a offset basis
  std::vector<std::uint64_t> round_hashes_;
};

struct DeterminismReport {
  bool deterministic = false;
  /// First divergent round (1-based), -1 when the traces are identical. If
  /// one trace is a strict prefix of the other, the first round past the
  /// shorter trace is reported.
  Round first_divergence = -1;
  std::uint64_t final_hash_a = 0;
  std::uint64_t final_hash_b = 0;
  std::size_t rounds_a = 0;
  std::size_t rounds_b = 0;
};

/// One-line summary for logs and the audit binary.
std::string to_string(const DeterminismReport& report);

class DeterminismAuditor {
 public:
  /// A scenario run: build the entire simulation from scratch (topology,
  /// seed, dynamics, protocols), install the recorder on the engine, and
  /// drive it. Called twice; both calls must be self-contained.
  using ScenarioRun = std::function<void(TraceHashRecorder&)>;

  /// Execute `run` twice with fresh recorders and compare the traces.
  [[nodiscard]] static DeterminismReport audit(const ScenarioRun& run);

  /// Compare two already-collected traces (exposed for tests and for
  /// auditing runs produced out-of-process).
  [[nodiscard]] static DeterminismReport compare(const TraceHashRecorder& a,
                                                 const TraceHashRecorder& b);
};

}  // namespace udwn
