#include "analysis/determinism.h"

#include <bit>

#include "common/contract.h"
#include "sim/network.h"

namespace udwn {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_step(std::uint64_t hash, std::uint64_t x) {
  // Fold the value in one byte at a time (classic FNV-1a over the 8 bytes).
  for (int i = 0; i < 8; ++i) {
    hash ^= (x >> (8 * i)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

void TraceHashRecorder::mix_u64(std::uint64_t x) { hash_ = fnv_step(hash_, x); }

void TraceHashRecorder::mix_double(double x) {
  // Bit-exact: -0.0 vs 0.0 and NaN payload differences count as divergence,
  // which is precisely what "bit-for-bit deterministic" means.
  mix_u64(std::bit_cast<std::uint64_t>(x));
}

void TraceHashRecorder::on_slot(Round round, Slot slot,
                                const SlotOutcome& outcome,
                                const Engine& engine) {
  mix_u64(static_cast<std::uint64_t>(round));
  mix_u64(static_cast<std::uint64_t>(slot));

  mix_u64(outcome.transmitters.size());
  for (NodeId u : outcome.transmitters) mix_u64(u.value);
  for (double i : outcome.interference) mix_double(i);
  for (NodeId s : outcome.decoded_from) mix_u64(s.value);
  for (std::uint8_t m : outcome.mass_delivered) mix_u64(m);
  for (std::uint8_t c : outcome.clear) mix_u64(c);

  const std::size_t n = engine.network().size();
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId id(static_cast<std::uint32_t>(v));
    mix_u64(engine.network().alive(id) ? 1 : 0);
    mix_u64(engine.clock_fired(id) ? 1 : 0);
    mix_double(engine.last_probability(id));
  }
}

void TraceHashRecorder::on_round_end(Round round, const Engine& /*engine*/) {
  UDWN_EXPECT(round >= 1);
  round_hashes_.push_back(hash_);
}

std::string to_string(const DeterminismReport& report) {
  if (report.deterministic) {
    return "deterministic: " + std::to_string(report.rounds_a) +
           " rounds, trace hash " + std::to_string(report.final_hash_a) +
           " on both runs";
  }
  return "NONDETERMINISTIC: first divergent round " +
         std::to_string(report.first_divergence) + " (run A: " +
         std::to_string(report.rounds_a) + " rounds, hash " +
         std::to_string(report.final_hash_a) + "; run B: " +
         std::to_string(report.rounds_b) + " rounds, hash " +
         std::to_string(report.final_hash_b) + ")";
}

DeterminismReport DeterminismAuditor::audit(const ScenarioRun& run) {
  TraceHashRecorder a;
  run(a);
  TraceHashRecorder b;
  run(b);
  return compare(a, b);
}

DeterminismReport DeterminismAuditor::compare(const TraceHashRecorder& a,
                                              const TraceHashRecorder& b) {
  const auto& ha = a.round_hashes();
  const auto& hb = b.round_hashes();

  DeterminismReport report;
  report.rounds_a = ha.size();
  report.rounds_b = hb.size();
  report.final_hash_a = a.final_hash();
  report.final_hash_b = b.final_hash();

  const std::size_t common = ha.size() < hb.size() ? ha.size() : hb.size();
  for (std::size_t i = 0; i < common; ++i) {
    if (ha[i] != hb[i]) {
      report.first_divergence = static_cast<Round>(i) + 1;
      return report;
    }
  }
  if (ha.size() != hb.size()) {
    // One trace is a strict prefix: the first missing round diverges.
    report.first_divergence = static_cast<Round>(common) + 1;
    return report;
  }
  report.deterministic = a.final_hash() == b.final_hash();
  if (!report.deterministic) {
    // Same per-round chain but different final hash can only happen when
    // slots ran after the last round boundary; call the tail divergent.
    report.first_divergence = static_cast<Round>(common) + 1;
  }
  return report;
}

}  // namespace udwn
