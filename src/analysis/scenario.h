// Scenario — one-stop assembly of a simulation instance: metric + path loss
// + reception model + channel + network + the App. B sensing bundles. Every
// experiment, test and example builds a Scenario instead of wiring the
// physical stack by hand, so all of them exercise identical physics.
#pragma once

#include <memory>
#include <vector>

#include "metric/euclidean.h"
#include "metric/quasi_metric.h"
#include "phy/channel.h"
#include "phy/pathloss.h"
#include "phy/reception.h"
#include "sensing/primitives.h"
#include "sim/network.h"

namespace udwn {

enum class ModelKind {
  Sinr,
  Udg,
  Qudg,
  Protocol,
  SuccClearOnly,
};

struct ScenarioConfig {
  ModelKind model = ModelKind::Sinr;
  /// Precision parameter ε (Sec. 2); communication radius is (1-ε)R.
  double epsilon = 0.3;
  /// Path-loss exponent / metricity power ζ.
  double zeta = 3.0;
  /// Uniform transmission power P.
  double power = 1.0;
  /// Target maximum transmission distance R. For SINR the ambient noise is
  /// derived as N = P/(β·R^ζ); graph models take R directly.
  double radius = 1.0;
  /// SINR threshold β (>= 1).
  double sinr_beta = 1.5;
  /// QUDG grey-zone outer radius, as a multiple of R.
  double qudg_outer = 1.4;
  /// Protocol-model interference radius, as a multiple of R.
  double protocol_interference = 2.0;
  /// Near-field distance clamp, as a fraction of R.
  double near_limit_fraction = 1e-3;
  /// SuccClearOnly model: guard factor ρ_c and interference budget I_c
  /// (as a multiple of P/R^ζ).
  double succ_clear_rho = 2.0;
  double succ_clear_ic_fraction = 0.125;  // = P/(2R)^ζ at ζ=3
};

class Scenario {
 public:
  /// Euclidean instance over the given positions.
  Scenario(std::vector<Vec2> positions, const ScenarioConfig& config);

  /// Instance over an arbitrary quasi-metric (BIG graphs, the Thm 5.3
  /// construction, ...). Takes ownership.
  Scenario(std::unique_ptr<QuasiMetric> metric, const ScenarioConfig& config);

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  [[nodiscard]] Network& network() { return *network_; }
  [[nodiscard]] const Network& network() const { return *network_; }
  [[nodiscard]] const Channel& channel() const { return *channel_; }
  [[nodiscard]] const PathLoss& pathloss() const { return *pathloss_; }
  [[nodiscard]] const ReceptionModel& model() const { return *model_; }
  [[nodiscard]] QuasiMetric& metric() { return *metric_; }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }

  /// The EuclideanMetric when this scenario is Euclidean, else nullptr
  /// (mobility dynamics need it).
  [[nodiscard]] EuclideanMetric* euclidean();

  /// Sensing bundle for LocalBcast: all primitives at precision ε.
  [[nodiscard]] CarrierSensing sensing_local() const;
  /// Sensing bundle for Bcast/Bcast* (Sec. 5): ACK at ε/2, NTD radius εR/2.
  [[nodiscard]] CarrierSensing sensing_broadcast() const;
  /// Sensing bundle for the App. G dominating-set stage: ACK at ε/2, NTD
  /// radius εR/4.
  [[nodiscard]] CarrierSensing sensing_domset() const;

  /// Communication radius R_B = (1-ε)R.
  [[nodiscard]] double comm_radius() const { return channel_->comm_radius(); }

  /// Alive neighbors of u in the current communication graph.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId u) const;

  /// Maximum neighborhood size over alive nodes (the paper's ∆).
  [[nodiscard]] std::size_t max_degree() const;

  /// BFS hop distances from `source` in the (directed) communication graph;
  /// -1 = unreachable. Index = node id.
  [[nodiscard]] std::vector<int> hop_distances(NodeId source) const;

 private:
  void build(const ScenarioConfig& config);

  ScenarioConfig config_;
  std::unique_ptr<QuasiMetric> metric_;
  std::unique_ptr<PathLoss> pathloss_;
  std::unique_ptr<ReceptionModel> model_;
  std::unique_ptr<Channel> channel_;
  std::unique_ptr<Network> network_;
};

}  // namespace udwn
