// Ground-truth recorders for experiments: first mass-delivery per node,
// informed-set growth, and per-round transmission statistics.
#pragma once

#include <vector>

#include "common/types.h"
#include "sim/engine.h"

namespace udwn {

/// Records, per node, the first global round in which it mass-delivered
/// (transmitted and all alive neighbors decoded), plus aggregate counters.
class DeliveryRecorder final : public Recorder {
 public:
  explicit DeliveryRecorder(std::size_t n);

  void on_slot(Round round, Slot slot, const SlotOutcome& outcome,
               const Engine& engine) override;

  /// First mass-delivery round per node id; -1 if none yet.
  [[nodiscard]] const std::vector<Round>& first_mass_delivery() const {
    return first_;
  }
  [[nodiscard]] std::int64_t total_mass_deliveries() const { return total_; }
  [[nodiscard]] std::int64_t total_transmissions() const {
    return transmissions_;
  }
  /// Transmissions that met the clear-channel condition of Def. 1.
  [[nodiscard]] std::int64_t clear_transmissions() const { return clear_; }

 private:
  std::vector<Round> first_;
  std::int64_t total_ = 0;
  std::int64_t transmissions_ = 0;
  std::int64_t clear_ = 0;
};

/// Tracks when each node first decoded any message (the informed set of a
/// global broadcast), measured from ground truth rather than protocol
/// internals so it works with every protocol type.
class InformedRecorder final : public Recorder {
 public:
  /// `sources` start informed at round 0.
  InformedRecorder(std::size_t n, std::vector<NodeId> sources);

  void on_slot(Round round, Slot slot, const SlotOutcome& outcome,
               const Engine& engine) override;

  /// First round each node decoded a message (0 for sources, -1 = never).
  [[nodiscard]] const std::vector<Round>& informed_round() const {
    return informed_;
  }
  [[nodiscard]] bool all_informed(const Network& network) const;
  [[nodiscard]] std::size_t informed_count() const { return count_; }

 private:
  std::vector<Round> informed_;
  std::size_t count_ = 0;
};

}  // namespace udwn
