#include "analysis/timeseries.h"

#include <algorithm>

#include "common/contract.h"

namespace udwn {

TimeSeriesRecorder::TimeSeriesRecorder(Round stride) : stride_(stride) {
  UDWN_EXPECT(stride >= 1);
}

void TimeSeriesRecorder::on_slot(Round round, Slot slot,
                                 const SlotOutcome& outcome,
                                 const Engine& engine) {
  if (slot != Slot::Data) return;
  std::size_t deliveries = 0, clear = 0;
  for (NodeId u : outcome.transmitters) {
    deliveries += outcome.mass_delivered[u.value] ? 1 : 0;
    clear += outcome.clear[u.value] ? 1 : 0;
  }
  cumulative_ += deliveries;
  if (round % stride_ != 0) return;

  TimeSeriesRow row;
  row.round = round;
  row.transmitters = outcome.transmitters.size();
  row.deliveries = deliveries;
  row.clear = clear;
  row.cumulative_deliveries = cumulative_;

  double p_sum = 0;
  for (NodeId v : engine.network().alive_nodes()) {
    ++row.alive;
    p_sum += engine.last_probability(v);
    row.max_interference =
        std::max(row.max_interference, outcome.interference[v.value]);
  }
  row.mean_probability = row.alive ? p_sum / static_cast<double>(row.alive)
                                   : 0.0;
  rows_.push_back(row);
}

void TimeSeriesRecorder::write_csv(std::ostream& os) const {
  os << "round,alive,transmitters,deliveries,clear,cumulative_deliveries,"
        "mean_probability,max_interference\n";
  for (const auto& r : rows_) {
    os << r.round << ',' << r.alive << ',' << r.transmitters << ','
       << r.deliveries << ',' << r.clear << ',' << r.cumulative_deliveries
       << ',' << r.mean_probability << ',' << r.max_interference << '\n';
  }
}

}  // namespace udwn
