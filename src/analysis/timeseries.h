// Per-round time-series collection: the observability layer an experiment
// or a downstream user attaches to watch a run unfold — transmitter counts,
// delivery counts, informed-set growth, mean transmission probability —
// with CSV export for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/engine.h"

namespace udwn {

/// One sampled row of the run.
struct TimeSeriesRow {
  Round round = 0;
  std::size_t alive = 0;
  std::size_t transmitters = 0;       // data slot
  std::size_t deliveries = 0;         // mass-deliveries this round
  std::size_t clear = 0;              // clear-channel transmissions
  std::size_t cumulative_deliveries = 0;
  double mean_probability = 0;        // over alive nodes, data slot
  double max_interference = 0;        // over alive nodes
};

/// Recorder sampling every `stride`-th round (stride 1 = every round).
class TimeSeriesRecorder final : public Recorder {
 public:
  explicit TimeSeriesRecorder(Round stride = 1);

  void on_slot(Round round, Slot slot, const SlotOutcome& outcome,
               const Engine& engine) override;

  [[nodiscard]] const std::vector<TimeSeriesRow>& rows() const {
    return rows_;
  }

  /// Dump as CSV with a header row.
  void write_csv(std::ostream& os) const;

 private:
  Round stride_;
  std::size_t cumulative_ = 0;
  std::vector<TimeSeriesRow> rows_;
};

}  // namespace udwn
