// udwnd — the long-lived scenario-service daemon (docs/SERVICE.md).
//
// Accepts JSONL scenario/trial requests over a Unix domain socket
// (--socket / UDWN_SVC_SOCKET) and/or stdin (--stdin; the default when no
// socket is configured), validates them against the declarative schema
// (src/svc/request.h), and executes admitted runs on shared worker pools
// with admission control — bounded queue, per-request trial/node caps,
// structured backpressure. Responses stream back as JSONL:
// accepted -> progress -> per-trial records -> summary; a `status` request
// answers with live aggregated counters, queue depth, in-flight count and
// uptime at any moment.
//
// Shutdown: SIGINT/SIGTERM (or stdin EOF) drains — new run requests are
// rejected with `shutting_down`, queued and in-flight work completes, every
// response is flushed, the process exits 0 after printing one final stats
// line to stderr. A second signal additionally cancels in-flight trials at
// their next round boundary (`cancelled` outcomes, still exit 0).
//
// Knobs (CLI overrides environment; all environment values strict-parsed
// via src/common/env.h):
//   --socket PATH | UDWN_SVC_SOCKET        listen on a Unix socket
//   --stdin                                also serve stdin/stdout
//   --workers N | UDWN_SVC_WORKERS         request workers (default 2)
//   --trial-threads N | UDWN_SVC_TRIAL_THREADS   trial pool per worker (1)
//   --queue N | UDWN_SVC_QUEUE             admission queue capacity (64)
//   --max-trials N | UDWN_SVC_MAX_TRIALS   per-request trial cap (4096)
//   --max-nodes N | UDWN_SVC_MAX_NODES     topology size cap (65536)
//   --max-rounds N | UDWN_SVC_MAX_ROUNDS   per-trial round budget ceiling
//   --max-line BYTES | UDWN_SVC_MAX_LINE   request line cap (1M; K/M/G ok)
//   --gain-budget BYTES | UDWN_SVC_GAIN_BUDGET   gain table per engine (16M)
//   --enable-test-faults                   honor the `inject` field (soak/CI)
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/env.h"
#include "svc/gateway.h"
#include "svc/service.h"

namespace {

udwn::svc::Gateway* g_gateway = nullptr;

void on_stop_signal(int /*sig*/) {
  if (g_gateway != nullptr) g_gateway->request_stop();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--stdin] [--workers N]\n"
               "  [--trial-threads N] [--queue N] [--max-trials N]\n"
               "  [--max-nodes N] [--max-rounds N] [--max-line BYTES]\n"
               "  [--gain-budget BYTES] [--enable-test-faults]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace udwn;
  svc::ServiceConfig service_config;
  svc::GatewayConfig gateway_config;

  // Environment first, flags second: a flag always wins over a knob.
  if (const auto s = env_string("UDWN_SVC_SOCKET"))
    gateway_config.socket_path = *s;
  if (const auto v = env_int("UDWN_SVC_WORKERS", 1, 256))
    service_config.workers = static_cast<int>(*v);
  if (const auto v = env_int("UDWN_SVC_TRIAL_THREADS", 1, 256))
    service_config.trial_threads = static_cast<int>(*v);
  if (const auto v = env_int("UDWN_SVC_QUEUE", 1, 1'000'000))
    service_config.queue_capacity = static_cast<std::size_t>(*v);
  if (const auto v = env_int("UDWN_SVC_MAX_TRIALS", 1, 1 << 20))
    service_config.max_trials = static_cast<std::uint32_t>(*v);
  if (const auto v = env_int("UDWN_SVC_MAX_NODES", 2, 1 << 24))
    service_config.max_nodes = static_cast<std::size_t>(*v);
  if (const auto v = env_int("UDWN_SVC_MAX_ROUNDS", 1, 1'000'000'000'000))
    service_config.default_max_rounds = static_cast<std::uint64_t>(*v);
  if (const auto v =
          env_size_bytes("UDWN_SVC_MAX_LINE", 64, std::uint64_t{1} << 30))
    gateway_config.max_line_bytes = static_cast<std::size_t>(*v);
  if (const auto v = env_size_bytes("UDWN_SVC_GAIN_BUDGET", 0,
                                    std::uint64_t{16} << 30))
    service_config.gain_budget_bytes = static_cast<std::size_t>(*v);

  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--socket" && (value = next_value(i))) {
      gateway_config.socket_path = value;
    } else if (arg == "--stdin") {
      gateway_config.serve_stdin = true;
    } else if (arg == "--workers" && (value = next_value(i))) {
      service_config.workers = std::atoi(value);
    } else if (arg == "--trial-threads" && (value = next_value(i))) {
      service_config.trial_threads = std::atoi(value);
    } else if (arg == "--queue" && (value = next_value(i))) {
      service_config.queue_capacity =
          static_cast<std::size_t>(std::atoll(value));
    } else if (arg == "--max-trials" && (value = next_value(i))) {
      service_config.max_trials =
          static_cast<std::uint32_t>(std::atoll(value));
    } else if (arg == "--max-nodes" && (value = next_value(i))) {
      service_config.max_nodes = static_cast<std::size_t>(std::atoll(value));
    } else if (arg == "--max-rounds" && (value = next_value(i))) {
      service_config.default_max_rounds =
          static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--max-line" && (value = next_value(i))) {
      gateway_config.max_line_bytes =
          static_cast<std::size_t>(std::atoll(value));
    } else if (arg == "--gain-budget" && (value = next_value(i))) {
      service_config.gain_budget_bytes =
          static_cast<std::size_t>(std::atoll(value));
    } else if (arg == "--enable-test-faults") {
      service_config.allow_fault_injection = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (gateway_config.socket_path.empty()) gateway_config.serve_stdin = true;

  svc::ScenarioService service(service_config);
  svc::Gateway gateway(service, gateway_config);
  g_gateway = &gateway;

  // A daemon must survive clients that vanish mid-response (Session also
  // guards with MSG_NOSIGNAL, but stdout is a pipe, not a socket).
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction action {};
  action.sa_handler = &on_stop_signal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  const int rc = gateway.run();
  std::fprintf(stderr, "%s\n", service.final_stats().c_str());
  return rc;
}
