#!/usr/bin/env python3
"""obs_overhead_check — gate the observability overhead on engine rounds.

Runs bench_micro on the BM_EngineRound / BM_EngineRoundObs pair at one
instance size and fails when the obs-enabled round is more than THRESHOLD
times the plain round. The obs-on path adds counter increments and ring
writes per slot; the contract (docs/OBSERVABILITY.md) is that this stays
within a few percent, so a regression here means an instrumentation site
grew a lock, an allocation, or landed in an inner loop.

Measurement discipline, tuned for noisy shared machines:

  * Within one pass, each benchmark runs REPETITIONS times with random
    interleaving, so slow drift (thermal, noisy neighbor) hits both sides
    alike instead of biasing whichever ran second.
  * The per-name MINIMUM real time is the compared statistic: the floor is
    the true cost, everything above it is interference.
  * On failure the pass is retried and minima are POOLED across passes —
    a load spike long enough to cover one whole pass (observed on
    single-CPU CI hosts) cannot fake a regression unless it covers every
    pass. The pooled floor only ever moves toward the true ratio.

Usage:
  obs_overhead_check.py BENCH_BINARY [--arg N] [--threshold X]
                        [--repetitions K] [--retries K] [--save PATH]

  --arg N           instance size to compare (default 2048)
  --threshold X     max allowed obs/base ratio (default 1.05)
  --repetitions K   google-benchmark repetitions per name per pass (default 7)
  --retries K       extra passes pooled in before declaring failure
                    (default 2)
  --save PATH       also write the first pass's raw google-benchmark JSON

Exit codes: 0 ratio within threshold, 1 over threshold, 2 usage/run error.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path


def run_bench(binary: str, arg: int, repetitions: int, out_path: Path) -> None:
    cmd = [
        binary,
        f"--benchmark_filter=^BM_EngineRound(Obs)?/{arg}$",
        f"--benchmark_repetitions={repetitions}",
        "--benchmark_report_aggregates_only=false",
        "--benchmark_enable_random_interleaving=true",
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
    ]
    result = subprocess.run(cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    if result.returncode != 0:
        sys.stderr.write(result.stdout.decode(errors="replace"))
        raise RuntimeError(f"benchmark run failed (exit {result.returncode})")


def min_real_time(report: dict, name: str) -> float:
    times = [
        b["real_time"]
        for b in report.get("benchmarks", [])
        if b.get("run_type") == "iteration" and b.get("name", "").startswith(name)
    ]
    if not times:
        raise RuntimeError(f"no iteration entries for {name!r} in benchmark output")
    return min(times)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="obs_overhead_check.py",
        description="Gate BM_EngineRoundObs overhead against BM_EngineRound.",
    )
    parser.add_argument("binary", help="path to the bench_micro executable")
    parser.add_argument("--arg", type=int, default=2048)
    parser.add_argument("--threshold", type=float, default=1.05)
    parser.add_argument("--repetitions", type=int, default=7)
    parser.add_argument("--retries", type=int, default=2)
    parser.add_argument("--save", type=Path, default=None)
    options = parser.parse_args(argv)

    base_name = f"BM_EngineRound/{options.arg}"
    obs_name = f"BM_EngineRoundObs/{options.arg}"
    best_base = float("inf")
    best_obs = float("inf")
    unit = "ns"
    for attempt in range(options.retries + 1):
        with tempfile.TemporaryDirectory(prefix="udwn_obs_overhead") as tmp:
            out_path = Path(tmp) / "bench.json"
            try:
                run_bench(
                    options.binary, options.arg, options.repetitions, out_path
                )
                report = json.loads(out_path.read_text())
                best_base = min(best_base, min_real_time(report, base_name))
                best_obs = min(best_obs, min_real_time(report, obs_name))
            except (OSError, RuntimeError, json.JSONDecodeError) as error:
                print(f"obs_overhead_check: {error}", file=sys.stderr)
                return 2
            if options.save is not None and attempt == 0:
                options.save.parent.mkdir(parents=True, exist_ok=True)
                options.save.write_text(out_path.read_text())

        ratio = best_obs / best_base
        unit = report["benchmarks"][0].get("time_unit", "ns")
        print(
            f"obs_overhead_check: {base_name} = {best_base:.1f} {unit}, "
            f"{obs_name} = {best_obs:.1f} {unit}, pooled ratio = {ratio:.4f} "
            f"(threshold {options.threshold:.2f}, pass {attempt + 1})"
        )
        if ratio <= options.threshold:
            print("obs_overhead_check: OK")
            return 0

    print("obs_overhead_check: FAIL — observability overhead over threshold")
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
