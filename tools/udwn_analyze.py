#!/usr/bin/env python3
"""udwn_analyze — call-graph and structure-aware invariant analyzer.

Where `udwn_lint.py` matches single lines, this tool builds a per-function IR
(boundaries, calls, allocation sites) for every C++ source under src/ and runs
four passes over it (see docs/TOOLING.md for the full rationale):

  hot-path-alloc     Compute the call graph reachable from functions marked
                     UDWN_HOT (common/contract.h) and flag every reachable
                     allocation: operator new, make_unique/make_shared,
                     malloc, growing container methods, std::function
                     construction, std::to_string, throw-by-value. This turns
                     the counting-allocator *test* into a static proof
                     obligation on the slot pipeline.

  det-unordered-iter Iteration over std::unordered_{map,set} whose loop body
                     writes state. Unlike the regex rule, a read-only loop
                     (pure lookup/accumulate into a sorted sink) is not
                     flagged.

  det-ptr-key        std::map/std::set keyed by a pointer type: iteration
                     order is address order, which varies run to run.

  det-wall-clock     obs_now_ns()/std::chrono/clock_gettime outside src/obs
                     and bench: simulation output must be a pure function of
                     the seed.

  layering           #include edges must follow the architecture DAG
                     (common -> obs/metric -> topo -> phy -> sensing ->
                     sim -> core -> baselines -> analysis); see DESIGN.md.

  env-hygiene        std::getenv only inside src/common/env.cpp (the strict
                     parser); everything else must take parsed config.

Frontends: with the clang Python bindings installed (python3-clang +
libclang), function boundaries come from the AST via compile_commands.json
(--compdb). Without them, a built-in structural parser recovers the same
boundaries from brace matching; body analysis is shared either way, so the
gate runs — with a warning — on machines without clang dev packages.

Suppression: `// udwn-lint: allow(<rule>): reason` on the offending line.
Grandfathered findings live in tools/analyze_baseline.json and match on
(rule, path, symbol, what) — never line numbers. Exit 0 = clean, 1 =
unsuppressed findings, 2 = usage error.

Usage: udwn_analyze.py [--json] [--frontend auto|clang|fallback]
                       [--compdb DIR] [--baseline FILE|none]
                       [--write-baseline] [--src-root DIR] [PATH...]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from udwn_report import (  # noqa: E402
    Finding,
    apply_baseline,
    baseline_entry,
    emit,
    load_baseline,
    parse_suppressions,
    strip_comments_and_strings,
)

SOURCE_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}

# --- Architecture ------------------------------------------------------------

#: Allowed #include targets per src/ layer (besides itself). This is the
#: DAG in DESIGN.md: anything not listed is a layering violation.
LAYER_DEPS: dict[str, set[str]] = {
    "common": set(),
    "obs": {"common"},
    "metric": {"common"},
    "topo": {"common", "metric"},
    "phy": {"common", "metric", "obs"},
    "sensing": {"common", "metric", "phy"},
    "sim": {"common", "metric", "topo", "obs", "phy", "sensing"},
    "core": {"common", "metric", "topo", "obs", "phy", "sensing", "sim"},
    "baselines": {
        "common", "metric", "topo", "obs", "phy", "sensing", "sim", "core",
    },
    "analysis": {
        "common", "metric", "topo", "obs", "phy", "sensing", "sim", "core",
        "baselines",
    },
    # Scenario-service gateway (docs/SERVICE.md): the topmost layer — it
    # orchestrates full scenarios, so it may see everything below; nothing
    # below may reach back into it.
    "svc": {
        "common", "metric", "topo", "obs", "phy", "sensing", "sim", "core",
        "baselines", "analysis",
    },
}

ENV_HOME = "src/common/env.cpp"
# Prefix-matched files/dirs where wall-clock reads are legitimate. The svc
# entry is deliberately one FILE, not the layer: ScenarioService reports
# uptime in `status` responses (operational telemetry, docs/SERVICE.md),
# while svc/exec.cpp stays clock-free — trial records must remain a pure
# function of (request, seed), and this gate is what enforces that.
CLOCK_HOMES = ("src/obs", "bench", "src/svc/service.cpp")

HOT_MACRO = "UDWN_HOT"

#: Virtual methods that cross into protocol/user code: the counting-allocator
#: test pins the no-protocol pipeline, so traversal stops at these (a
#: protocol that allocates is its own bug, not the engine's).
BOUNDARY_METHODS = {
    "on_slot", "on_start", "on_round_end", "transmit_probability",
    "payload", "obs_state", "step",
}

#: Container methods that may grow capacity (allocate) — reported with a
#: "reserve in warm-up" hint; unconditional allocations get a harder message.
GROWTH_METHODS = {
    "push_back", "emplace_back", "resize", "reserve", "insert", "emplace",
    "assign", "append", "push_front", "emplace_front",
}

ALLOC_RES: list[tuple[re.Pattern[str], str, bool]] = [
    (re.compile(r"(?<![\w.])new\b"), "operator new", False),
    (re.compile(r"\bstd::make_(unique|shared)\b"), "make_unique/make_shared", False),
    (re.compile(r"(?<![\w:])(malloc|calloc|realloc)\s*\("), "malloc", False),
    (re.compile(r"\bthrow\s+[A-Za-z_:]"), "throw-by-value", False),
    (re.compile(r"\bstd::function\s*<"), "std::function construction", False),
    (re.compile(r"\bstd::to_string\s*\("), "std::to_string", False),
    (
        re.compile(
            r"(?:\.|->)\s*(" + "|".join(sorted(GROWTH_METHODS)) + r")\s*\("
        ),
        "",  # what = the matched method name
        True,
    ),
]

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast", "assert",
    "defined", "decltype", "noexcept", "new", "delete", "throw", "alignas",
    "static_assert", "typeid", "operator",
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
GETENV_RE = re.compile(r"(?<![\w:])(?:std::)?getenv\s*\(")
WALL_CLOCK_RE = re.compile(
    r"\bobs_now_ns\s*\(|std::chrono\b|#\s*include\s*<chrono>"
    r"|\bclock_gettime\s*\(|\bgettimeofday\s*\("
)
PTR_KEY_RE = re.compile(
    r"std::(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*"
)
UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;{=(]"
)
RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*?:\s*([^)]+)\)")
BEGIN_ITER = re.compile(r"(\w+)\s*\.\s*(?:begin|cbegin|rbegin)\s*\(")
#: A loop body "writes" if it assigns — plain or compound, both are
#: order-sensitive for floats — increments/decrements, or calls a mutating
#: container method. Comparisons (==, !=, <=, >=) are not writes.
WRITE_RE = re.compile(
    r"(?<![=!<>])=(?![=])|\+\+|--"
    r"|(?:\.|->)\s*(?:push_back|emplace_back|insert|emplace|erase|clear"
    r"|resize|assign|push_front|pop_back|pop_front)\s*\("
)

UNIQUE_PTR_DECL = re.compile(
    r"std::unique_ptr\s*<\s*([A-Za-z_]\w*)\s*>\s+([A-Za-z_]\w*)"
)
TYPED_DECL = re.compile(
    r"(?:^|[\s(,])(?:const\s+)?([A-Z]\w*)\s*(?:<[^<>;]*>)?\s*[*&]?\s+"
    r"([a-z_]\w*)\s*(?:[;,)=\[]|$)"
)
CALL_RE = re.compile(
    r"(?:([A-Za-z_]\w*)\s*(?:\.|->)\s*)?([A-Za-z_]\w*)\s*\("
)
QUAL_CALL_RE = re.compile(r"([A-Za-z_]\w*)::([A-Za-z_]\w*)\s*\(")


# --- IR ----------------------------------------------------------------------


@dataclass
class FunctionInfo:
    """One function definition: identity, extent, and body facts."""

    qname: str          # Class::name for methods, bare name for free functions
    name: str           # unqualified name
    cls: str            # enclosing/nominated class, "" for free functions
    path: str           # repo-relative path
    line: int           # line of the opening brace's statement
    hot: bool           # UDWN_HOT on this definition
    noreturn: bool
    body: str = ""      # stripped body text (between the braces)
    body_line: int = 0  # line number where body starts
    calls: list[tuple[int, str, str]] = field(default_factory=list)
    #                   (line, receiver_class_or_var_hint, name)
    allocs: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class FileFacts:
    """Per-file textual facts shared by every pass and frontend."""

    rel: str
    raw_lines: list[str]
    code: str
    code_lines: list[str]
    suppressed: dict[int, set[str]]


# --- Fallback structural frontend -------------------------------------------


def remove_preprocessor(text: str) -> str:
    """Blank preprocessor lines (with continuations), preserving line count."""
    lines = text.split("\n")
    out: list[str] = []
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.lstrip().startswith("#"):
            out.append("")
            while line.rstrip().endswith("\\") and i + 1 < len(lines):
                i += 1
                line = lines[i]
                out.append("")
        else:
            out.append(line)
        i += 1
    return "\n".join(out)


def match_brace(text: str, open_pos: int, line: int) -> tuple[int, int]:
    """Index and line of the `}` closing the `{` at open_pos."""
    depth = 0
    i = open_pos
    n = len(text)
    while i < n:
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i, line
        elif c == "\n":
            line += 1
        i += 1
    return n - 1, line


CLASS_HEAD = re.compile(r"^(?:template\s*<.*>\s*)?(?:class|struct|union)\b")
NAMESPACE_HEAD = re.compile(r"^(?:inline\s+)?namespace\b|^extern\s*$")


def classify(stmt: str) -> tuple[str, str]:
    """Classify the statement before a `{`: what kind of scope opens?

    Returns (kind, name); kind is one of namespace/class/function/skip/blob.
    `blob` means the brace group is part of a larger statement (a braced
    initializer, a ctor init-list argument) and should be skipped in place.
    """
    s = re.sub(r"\b(?:public|private|protected)\s*:", " ", stmt).strip()
    if not s:
        return "skip", ""
    if NAMESPACE_HEAD.match(s):
        idents = re.findall(r"[A-Za-z_]\w*", s)
        return "namespace", idents[-1] if idents[-1] != "namespace" else ""
    if s.startswith("enum"):
        return "skip", ""
    if CLASS_HEAD.match(s) and "=" not in s.split(":")[0]:
        tail = CLASS_HEAD.sub("", s).split(":")[0]
        idents = [
            t for t in re.findall(r"[A-Za-z_]\w*", tail)
            if t not in ("final", "alignas")
        ]
        return ("class", idents[0]) if idents else ("skip", "")
    if "operator" in s and "(" in s:
        return "function", "operator"
    if "(" in s:
        # `=` at paren depth 0 before any brace -> braced initializer.
        depth = 0
        for k, c in enumerate(s):
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif c == "=" and depth == 0:
                if k + 1 < len(s) and s[k + 1] == "=":
                    break  # comparison; can't be an initializer header
                return "blob", ""
        m = re.search(r"([A-Za-z_~]\w*)\s*\(", s)
        if m and m.group(1) not in CPP_KEYWORDS:
            return "function", m.group(1)
    return "blob", ""


def decl_name(stmt: str) -> tuple[str, str]:
    """(class_hint, name) for a `;`-terminated function declaration."""
    m = re.search(r"([A-Za-z_~]\w*(?:::[A-Za-z_~]\w*)*)\s*\(", stmt)
    if not m or m.group(1).split("::")[-1] in CPP_KEYWORDS:
        return "", ""
    parts = m.group(1).split("::")
    return (parts[-2] if len(parts) > 1 else ""), parts[-1]


def parse_functions_fallback(
    facts: FileFacts,
) -> tuple[list[FunctionInfo], set[str], set[str], dict[str, str]]:
    """Recover function boundaries structurally: returns (functions,
    hot_decl_qnames, noreturn_qnames, receiver type map)."""
    text = remove_preprocessor(facts.code)
    functions: list[FunctionInfo] = []
    hot_decls: set[str] = set()
    noreturn_decls: set[str] = set()
    types: dict[str, str] = {}
    ctx: list[tuple[str, str]] = []  # (kind, name)

    def enclosing_class() -> str:
        for kind, name in reversed(ctx):
            if kind == "class":
                return name
        return ""

    def qualify(stmt_cls: str, name: str) -> str:
        cls = stmt_cls or enclosing_class()
        return f"{cls}::{name}" if cls else name

    def handle_decl(stmt: str) -> None:
        for t, v in UNIQUE_PTR_DECL.findall(stmt):
            types[v] = t
        for t, v in TYPED_DECL.findall(stmt):
            types.setdefault(v, t)
        if "(" in stmt and (HOT_MACRO in stmt or "[[noreturn]]" in stmt):
            cls, name = decl_name(stmt)
            if name:
                if HOT_MACRO in stmt:
                    hot_decls.add(qualify(cls, name))
                if "[[noreturn]]" in stmt:
                    noreturn_decls.add(qualify(cls, name))

    buf: list[str] = []
    buf_line = 1
    buf_started = False
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            buf.append(" ")
            i += 1
            continue
        if c == ";":
            handle_decl("".join(buf).strip())
            buf, buf_started = [], False
            i += 1
            continue
        if c == "}":
            if ctx:
                ctx.pop()
            buf, buf_started = [], False
            i += 1
            continue
        if c != "{":
            if not buf_started and not c.isspace():
                buf_line = line
                buf_started = True
            buf.append(c)
            i += 1
            continue

        stmt = "".join(buf).strip()
        kind, name = classify(stmt)
        if kind == "namespace":
            ctx.append(("namespace", name))
            buf, buf_started = [], False
            i += 1
        elif kind == "class":
            ctx.append(("class", name))
            # A class head can also declare members after the body
            # (`struct X { ... } x;`) — rare here; ignored.
            buf, buf_started = [], False
            i += 1
        elif kind == "function":
            close, end_line = match_brace(text, i, line)
            cls, fname = decl_name(stmt)
            if fname:
                # Collect parameter receiver types from the signature too.
                handle_decl(stmt)
                functions.append(
                    FunctionInfo(
                        qname=qualify(cls, fname),
                        name=fname,
                        cls=cls or enclosing_class(),
                        path=facts.rel,
                        line=buf_line,
                        hot=HOT_MACRO in stmt,
                        noreturn="[[noreturn]]" in stmt,
                        body=text[i + 1 : close],
                        body_line=line,
                    )
                )
            i = close + 1
            line = end_line
            buf, buf_started = [], False
        elif kind == "skip":
            close, end_line = match_brace(text, i, line)
            i = close + 1
            line = end_line
            buf, buf_started = [], False
        else:  # blob: keep accumulating the surrounding statement
            close, end_line = match_brace(text, i, line)
            buf.append(" <blob> ")
            i = close + 1
            line = end_line
    return functions, hot_decls, noreturn_decls, types


# --- Optional clang frontend -------------------------------------------------


def parse_functions_clang(
    all_facts: dict[str, FileFacts], compdb_dir: Path, repo_root: Path
) -> list[FunctionInfo] | None:
    """Function boundaries from libclang, when the bindings are importable.

    Only boundaries (qname, extent) come from the AST; body facts are
    extracted by the same textual scans as the fallback, so both frontends
    feed one pass implementation. Returns None if clang is unusable.
    """
    try:
        import clang.cindex as ci  # type: ignore[import-not-found]
    except Exception:
        return None
    try:
        db = ci.CompilationDatabase.fromDirectory(str(compdb_dir))
        index = ci.Index.create()
    except Exception:
        return None

    fn_kinds = {
        ci.CursorKind.FUNCTION_DECL,
        ci.CursorKind.CXX_METHOD,
        ci.CursorKind.CONSTRUCTOR,
        ci.CursorKind.DESTRUCTOR,
        ci.CursorKind.FUNCTION_TEMPLATE,
    }
    scope_kinds = {
        ci.CursorKind.NAMESPACE,
        ci.CursorKind.CLASS_DECL,
        ci.CursorKind.STRUCT_DECL,
        ci.CursorKind.CLASS_TEMPLATE,
        ci.CursorKind.TRANSLATION_UNIT,
        ci.CursorKind.UNEXPOSED_DECL,
        ci.CursorKind.LINKAGE_SPEC,
    }
    functions: list[FunctionInfo] = []
    seen: set[tuple[str, int]] = set()

    def visit(cursor, rel_of) -> None:
        for child in cursor.get_children():
            if child.kind in fn_kinds and child.is_definition():
                rel = rel_of(child)
                if rel is None:
                    continue
                start = child.extent.start.line
                if (rel, start) in seen:
                    continue
                seen.add((rel, start))
                parent = child.semantic_parent
                cls = (
                    parent.spelling
                    if parent is not None
                    and parent.kind
                    in (
                        ci.CursorKind.CLASS_DECL,
                        ci.CursorKind.STRUCT_DECL,
                        ci.CursorKind.CLASS_TEMPLATE,
                    )
                    else ""
                )
                name = child.spelling
                hot = any(
                    a.kind == ci.CursorKind.ANNOTATE_ATTR
                    and a.spelling == "udwn_hot"
                    for a in child.get_children()
                )
                facts = all_facts[rel]
                lines = facts.code.split("\n")
                body = "\n".join(
                    lines[start - 1 : child.extent.end.line]
                )
                brace = body.find("{")
                if brace < 0:
                    continue
                functions.append(
                    FunctionInfo(
                        qname=f"{cls}::{name}" if cls else name,
                        name=name,
                        cls=cls,
                        path=rel,
                        line=start,
                        hot=hot,
                        noreturn=False,  # filled from textual decls
                        body=body[brace + 1 :].rsplit("}", 1)[0],
                        body_line=start + body[:brace].count("\n"),
                    )
                )
            elif child.kind in scope_kinds:
                visit(child, rel_of)

    parsed_any = False
    for rel, facts in all_facts.items():
        if not rel.endswith(".cpp") and not rel.endswith(".cc"):
            continue
        cmds = db.getCompileCommands(str(repo_root / rel))
        if not cmds:
            continue
        cmd = cmds[0]
        args = [a for a in cmd.arguments][1:]
        for flag in ("-c", "-o"):
            while flag in args:
                k = args.index(flag)
                del args[k : k + 2 if flag == "-o" else k + 1]
        try:
            tu = index.parse(str(repo_root / rel), args=args)
        except Exception:
            continue

        def rel_of(cursor):
            if cursor.location.file is None:
                return None
            try:
                r = str(
                    Path(cursor.location.file.name).resolve().relative_to(repo_root)
                )
            except ValueError:
                return None
            return r if r in all_facts else None

        visit(tu.cursor, rel_of)
        parsed_any = True
    return functions if parsed_any else None


def merge_frontends(
    clang_fns: list[FunctionInfo], fallback_fns: list[FunctionInfo]
) -> list[FunctionInfo]:
    """Clang boundaries win; fallback entries survive only where clang saw
    nothing (headers aren't TUs in the compdb).

    Deduplication is by *overlapping extent*, not exact start line:
    multi-line declarations (attributes, templates) shift the recorded
    start between frontends, and a surviving double entry would analyze
    the same body twice under two qnames, producing duplicate findings
    that dodge baseline matching.
    """

    def extent(fn: FunctionInfo) -> tuple[int, int]:
        end = fn.body_line + fn.body.count("\n")
        return fn.line, max(fn.line, end)

    clang_extents: dict[str, list[tuple[int, int]]] = {}
    for f in clang_fns:
        clang_extents.setdefault(f.path, []).append(extent(f))

    def clang_covers(fn: FunctionInfo) -> bool:
        lo, hi = extent(fn)
        return any(
            lo <= c_hi and c_lo <= hi
            for c_lo, c_hi in clang_extents.get(fn.path, ())
        )

    return clang_fns + [f for f in fallback_fns if not clang_covers(f)]


# --- Body analysis (shared by both frontends) --------------------------------


def analyze_bodies(
    functions: list[FunctionInfo], global_types: dict[str, str]
) -> None:
    """Fill calls/allocs for every function from its body text."""
    for fn in functions:
        local_types = dict(global_types)
        body_lines = fn.body.split("\n")
        for off, bline in enumerate(body_lines):
            for t, v in UNIQUE_PTR_DECL.findall(bline):
                local_types[v] = t
            for t, v in TYPED_DECL.findall(bline):
                local_types.setdefault(v, t)
        for off, bline in enumerate(body_lines):
            lineno = fn.body_line + off
            for m in QUAL_CALL_RE.finditer(bline):
                if m.group(2) not in CPP_KEYWORDS:
                    fn.calls.append((lineno, m.group(1), m.group(2)))
            for m in CALL_RE.finditer(bline):
                recv, name = m.group(1), m.group(2)
                if name in CPP_KEYWORDS or name in GROWTH_METHODS:
                    continue
                hint = local_types.get(recv, recv) if recv else ""
                fn.calls.append((lineno, hint, name))
            for pattern, what, is_growth in ALLOC_RES:
                for m in pattern.finditer(bline):
                    fn.allocs.append(
                        (lineno, m.group(1) if is_growth else what)
                    )


def build_call_graph(
    functions: list[FunctionInfo],
) -> tuple[dict[str, list[FunctionInfo]], dict[str, list[FunctionInfo]]]:
    by_qname: dict[str, list[FunctionInfo]] = {}
    by_name: dict[str, list[FunctionInfo]] = {}
    for fn in functions:
        by_qname.setdefault(fn.qname, []).append(fn)
        by_name.setdefault(fn.name, []).append(fn)
    return by_qname, by_name


def resolve_call(
    caller: FunctionInfo,
    hint: str,
    name: str,
    by_qname: dict[str, list[FunctionInfo]],
    by_name: dict[str, list[FunctionInfo]],
) -> list[FunctionInfo]:
    """Candidate definitions for a call site.

    Receiver hints narrow method fan-out: if the receiver's class is known
    and defines `name`, only that class's method is a candidate. Bare calls
    resolve to free functions plus the caller's own class. Unknown-receiver
    calls over-approximate to every class defining `name` — the price of a
    name-based graph; genuinely cold hits go to the baseline.
    """
    if hint:
        exact = by_qname.get(f"{hint}::{name}")
        if exact:
            return exact
        if hint[0].isupper():
            return []  # known class without that method: not ours
        return [f for f in by_name.get(name, []) if f.cls]
    return [
        f
        for f in by_name.get(name, [])
        if not f.cls or f.cls == caller.cls
    ]


def hot_path_pass(
    functions: list[FunctionInfo],
    hot_decls: set[str],
    noreturn_decls: set[str],
    all_facts: dict[str, FileFacts],
) -> list[Finding]:
    by_qname, by_name = build_call_graph(functions)
    roots = [f for f in functions if f.hot or f.qname in hot_decls]
    parent: dict[str, str | None] = {}
    queue: deque[FunctionInfo] = deque()
    for root in roots:
        if root.qname not in parent:
            parent[root.qname] = None
            queue.append(root)

    visited_defs: list[FunctionInfo] = []
    seen_defs: set[int] = set()
    while queue:
        fn = queue.popleft()
        if id(fn) in seen_defs:
            continue
        seen_defs.add(id(fn))
        visited_defs.append(fn)
        facts = all_facts.get(fn.path)
        for lineno, hint, name in fn.calls:
            if name in BOUNDARY_METHODS:
                continue
            if facts and "hot-path-alloc" in facts.suppressed.get(lineno, ()):
                continue  # suppressed call line also cuts traversal
            for callee in resolve_call(fn, hint, name, by_qname, by_name):
                if callee.noreturn or callee.qname in noreturn_decls:
                    continue
                if callee.qname not in parent:
                    parent[callee.qname] = fn.qname
                if id(callee) not in seen_defs:
                    queue.append(callee)

    def chain(qname: str) -> tuple[str, ...]:
        out = [qname]
        while parent.get(out[-1]) is not None:
            out.append(parent[out[-1]])  # type: ignore[arg-type]
        return tuple(reversed(out))

    findings: list[Finding] = []
    reported: set[tuple[str, int, str]] = set()
    for fn in visited_defs:
        if fn.noreturn or fn.qname in noreturn_decls:
            continue
        for lineno, what in fn.allocs:
            key = (fn.path, lineno, what)
            if key in reported:
                continue
            reported.add(key)
            growth = what in GROWTH_METHODS
            detail = (
                f"'{what}' may grow capacity on a hot path — size the "
                "buffer in warm-up (reserve/assign before steady state) or "
                "suppress with a reason"
                if growth
                else f"{what} on a hot path — the slot pipeline must not "
                "allocate in steady state"
            )
            findings.append(
                Finding(
                    path=fn.path,
                    line=lineno,
                    rule="hot-path-alloc",
                    message=detail,
                    symbol=fn.qname,
                    what=what,
                    chain=chain(fn.qname),
                )
            )
    return findings


# --- Textual passes ----------------------------------------------------------


def layer_of(rel: str) -> str | None:
    parts = rel.split("/")
    if len(parts) >= 3 and parts[0] == "src" and parts[1] in LAYER_DEPS:
        return parts[1]
    return None


def layering_pass(facts: FileFacts) -> list[Finding]:
    layer = layer_of(facts.rel)
    if layer is None:
        return []
    findings = []
    for lineno, line in enumerate(facts.raw_lines, 1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        target = m.group(1).split("/")[0]
        if target not in LAYER_DEPS or target == layer:
            continue
        if target not in LAYER_DEPS[layer]:
            findings.append(
                Finding(
                    path=facts.rel,
                    line=lineno,
                    rule="layering",
                    message=f"src/{layer} must not include src/{target}: the "
                    "architecture DAG (DESIGN.md) only allows "
                    f"{{{', '.join(sorted(LAYER_DEPS[layer])) or 'nothing'}}}",
                    what=m.group(1),
                )
            )
    return findings


def env_pass(facts: FileFacts) -> list[Finding]:
    if facts.rel == ENV_HOME:
        return []
    findings = []
    for lineno, line in enumerate(facts.code_lines, 1):
        if GETENV_RE.search(line):
            findings.append(
                Finding(
                    path=facts.rel,
                    line=lineno,
                    rule="env-hygiene",
                    message="std::getenv outside src/common/env.cpp: "
                    "environment access goes through the strict parser "
                    "(udwn::env) so typos and bad values fail loudly",
                    what="getenv",
                )
            )
    return findings


def wall_clock_pass(facts: FileFacts) -> list[Finding]:
    if any(facts.rel.startswith(d) for d in CLOCK_HOMES):
        return []
    findings = []
    for lineno, line in enumerate(facts.code_lines, 1):
        m = WALL_CLOCK_RE.search(line)
        if m:
            findings.append(
                Finding(
                    path=facts.rel,
                    line=lineno,
                    rule="det-wall-clock",
                    message=f"wall-clock read ('{m.group(0).strip()}') "
                    "outside src/obs and bench: simulation output must be a "
                    "pure function of the seed",
                    what=m.group(0).strip().split("(")[0],
                )
            )
    return findings


def ptr_key_pass(facts: FileFacts) -> list[Finding]:
    findings = []
    for lineno, line in enumerate(facts.code_lines, 1):
        m = PTR_KEY_RE.search(line)
        if m:
            findings.append(
                Finding(
                    path=facts.rel,
                    line=lineno,
                    rule="det-ptr-key",
                    message="ordered container keyed by pointer: iteration "
                    "order is address order, which varies between runs — "
                    "key by NodeId or another stable value",
                    what=m.group(0),
                )
            )
    return findings


def unordered_iter_pass(facts: FileFacts) -> list[Finding]:
    names = set(UNORDERED_DECL.findall(facts.code))
    if not names:
        return []
    findings = []
    code = facts.code
    lines = facts.code_lines
    # Precompute char offset of each line start for body slicing.
    offsets = [0]
    for line in lines:
        offsets.append(offsets[-1] + len(line) + 1)

    def body_after(lineno: int) -> str:
        """Loop body: next brace group, or text to the next `;`."""
        start = offsets[lineno - 1]
        brace = code.find("{", start)
        semi = code.find(";", code.find(")", start) + 1)
        if brace != -1 and (semi == -1 or brace < semi):
            end, _ = match_brace(code, brace, 0)
            return code[brace : end + 1]
        return code[start : semi + 1] if semi != -1 else ""

    for lineno, line in enumerate(lines, 1):
        hit = ""
        for m in RANGE_FOR.finditer(line):
            common = set(re.findall(r"\w+", m.group(1))) & names
            if common:
                hit = sorted(common)[0]
        for m in BEGIN_ITER.finditer(line):
            if m.group(1) in names:
                hit = m.group(1)
        if hit and WRITE_RE.search(body_after(lineno)):
            findings.append(
                Finding(
                    path=facts.rel,
                    line=lineno,
                    rule="det-unordered-iter",
                    message=f"loop over unordered container '{hit}' writes "
                    "state: hash/address iteration order would leak into "
                    "simulation results — sort the keys first or use an "
                    "ordered container",
                    what=hit,
                )
            )
    return findings


# --- Metric dirty-tracking pass ----------------------------------------------

#: Member-function name prefixes that, on a QuasiMetric subclass, signal a
#: mutator of the distance function.
METRIC_MUTATOR_RE = re.compile(r"^(set_|add_|remove_|update_|apply_)")
#: A class in src/metric deriving (however qualified) from QuasiMetric.
METRIC_BASE_RE = re.compile(
    r"class\s+(\w+)[^;{]*:[^;{]*\bQuasiMetric\b", re.DOTALL
)
#: Evidence the mutator reported its change: a bump_version overload
#: (coarse or per-node) or a direct DirtyLog record.
DIRTY_MARK_RE = re.compile(r"\bbump_version\b|\brecord_global\b|\brecord\s*\(")


def metric_dirty_pass(
    functions: list[FunctionInfo], all_facts: dict[str, FileFacts]
) -> list[Finding]:
    """Every mutator of a QuasiMetric subclass must report what changed.

    The invalidation stack hangs off QuasiMetric::version() and its
    DirtyLog (metric/dirty_log.h): a mutator that edits distances without
    calling a bump_version overload leaves BOTH the epoch and the delta
    caches silently stale — the exact failure mode quasi_metric.h warns
    about, now checked instead of trusted. Heuristic scope: member
    functions named set_*/add_*/remove_*/update_*/apply_* on classes that
    derive from QuasiMetric, anywhere under src/metric.
    """
    metric_classes: set[str] = set()
    for facts in all_facts.values():
        if facts.rel.startswith("src/metric/"):
            metric_classes.update(METRIC_BASE_RE.findall(facts.code))
    if not metric_classes:
        return []
    findings: list[Finding] = []
    for fn in functions:
        if not fn.path.startswith("src/metric/"):
            continue
        if fn.cls not in metric_classes:
            continue
        if not METRIC_MUTATOR_RE.match(fn.name):
            continue
        if DIRTY_MARK_RE.search(fn.body):
            continue
        findings.append(
            Finding(
                path=fn.path,
                line=fn.line,
                rule="metric-dirty",
                message=f"metric mutator '{fn.qname}' neither logs dirty "
                "nodes (bump_version(node)) nor bumps the coarse version "
                "(bump_version()) — every cache over this metric goes "
                "silently stale; see the contract in metric/dirty_log.h",
                symbol=fn.qname,
                what=fn.name,
            )
        )
    return findings


# --- Driver ------------------------------------------------------------------


def collect_files(arguments: list[str], src_root: Path) -> list[Path]:
    files: list[Path] = []
    for argument in arguments:
        p = src_root / argument if not Path(argument).is_absolute() else Path(argument)
        if p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*")) if f.suffix in SOURCE_SUFFIXES
            )
        elif p.suffix in SOURCE_SUFFIXES and p.exists():
            files.append(p)
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="udwn_analyze.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--json", action="store_true", dest="json_mode")
    parser.add_argument(
        "--frontend", choices=("auto", "clang", "fallback"), default="auto"
    )
    parser.add_argument("--compdb", default="build")
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON ('none' disables; default tools/analyze_baseline.json)",
    )
    parser.add_argument("--write-baseline", action="store_true")
    parser.add_argument(
        "--src-root",
        default=None,
        help="treat DIR as the repo root (fixture trees); default: repo root",
    )
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent
    src_root = Path(args.src_root).resolve() if args.src_root else repo_root
    requested = args.paths or ["src"]
    files = collect_files(requested, src_root)
    if not files:
        print("udwn_analyze: no C++ sources under the given paths", file=sys.stderr)
        return 2

    notes: list[str] = []

    # Always load the whole src tree for IR building, even when the user
    # asked about a subset — the call graph needs every definition.
    ir_files = set(files)
    if src_root.joinpath("src").is_dir():
        ir_files.update(collect_files(["src"], src_root))

    all_facts: dict[str, FileFacts] = {}
    suppression_findings: list[Finding] = []
    for f in sorted(ir_files):
        try:
            rel = str(f.resolve().relative_to(src_root))
        except ValueError:
            rel = str(f)
        raw = f.read_text(encoding="utf-8", errors="replace")
        raw_lines = raw.splitlines()
        suppressed, bad = parse_suppressions(raw_lines, rel)
        code = strip_comments_and_strings(raw)
        all_facts[rel] = FileFacts(
            rel=rel,
            raw_lines=raw_lines,
            code=code,
            code_lines=code.splitlines(),
            suppressed=suppressed,
        )
        suppression_findings.extend(bad)

    # Frontend: function boundaries.
    functions: list[FunctionInfo] = []
    hot_decls: set[str] = set()
    noreturn_decls: set[str] = set()
    global_types: dict[str, str] = {}
    for facts in all_facts.values():
        fns, hots, norets, types = parse_functions_fallback(facts)
        hot_decls |= hots
        noreturn_decls |= norets
        for k, v in types.items():
            global_types.setdefault(k, v)
        functions.extend(fns)

    if args.frontend in ("auto", "clang"):
        compdb_dir = (
            Path(args.compdb)
            if Path(args.compdb).is_absolute()
            else repo_root / args.compdb
        )
        clang_fns = None
        if compdb_dir.joinpath("compile_commands.json").is_file():
            clang_fns = parse_functions_clang(all_facts, compdb_dir, repo_root)
        if clang_fns is not None:
            functions = merge_frontends(clang_fns, functions)
            for fn in functions:
                if fn.qname in noreturn_decls:
                    fn.noreturn = True
            notes.append("frontend: clang (libclang + compile_commands.json)")
        elif args.frontend == "clang":
            print(
                "udwn_analyze: --frontend clang requested but libclang / "
                "compile_commands.json unavailable",
                file=sys.stderr,
            )
            return 2
        else:
            notes.append(
                "frontend: built-in structural parser (libclang not "
                "importable — install python3-clang for AST boundaries)"
            )
    else:
        notes.append("frontend: built-in structural parser (forced)")

    analyze_bodies(functions, global_types)

    # Passes. Hot-path runs on the whole IR; findings are filtered to the
    # requested paths afterwards.
    requested_rels = set()
    for f in files:
        try:
            requested_rels.add(str(f.resolve().relative_to(src_root)))
        except ValueError:
            requested_rels.add(str(f))

    raw_findings: list[Finding] = []
    raw_findings.extend(
        hot_path_pass(functions, hot_decls, noreturn_decls, all_facts)
    )
    raw_findings.extend(metric_dirty_pass(functions, all_facts))
    for facts in all_facts.values():
        raw_findings.extend(layering_pass(facts))
        raw_findings.extend(env_pass(facts))
        raw_findings.extend(wall_clock_pass(facts))
        raw_findings.extend(ptr_key_pass(facts))
        raw_findings.extend(unordered_iter_pass(facts))

    raw_findings = [f for f in raw_findings if f.path in requested_rels]
    raw_findings.extend(
        f for f in suppression_findings if f.path in requested_rels
    )

    # Suppressions.
    kept: list[Finding] = []
    suppressed_count = 0
    for finding in raw_findings:
        facts = all_facts.get(finding.path)
        rules = facts.suppressed.get(finding.line, set()) if facts else set()
        if finding.rule in rules:
            suppressed_count += 1
        else:
            kept.append(finding)

    kept.sort(key=lambda f: (f.path, f.line, f.rule))

    # Baseline.
    baselined = 0
    if args.baseline != "none":
        baseline_path = (
            Path(args.baseline)
            if args.baseline
            else repo_root / "tools" / "analyze_baseline.json"
        )
        if args.write_baseline:
            entries: list[dict] = []
            index: dict[tuple[str, str, str, str], int] = {}
            for f in kept:
                key = (f.rule, f.path, f.symbol, f.what)
                if key in index:
                    entries[index[key]]["count"] += 1
                else:
                    index[key] = len(entries)
                    entries.append({**baseline_entry(f), "count": 1})
            payload = {
                "comment": "Grandfathered findings; match on "
                "(rule, path, symbol, what), each entry absorbing at most "
                "'count' occurrences. Shrink, never grow.",
                "findings": entries,
            }
            baseline_path.write_text(
                json.dumps(payload, indent=2) + "\n", encoding="utf-8"
            )
            print(
                f"udwn_analyze: wrote {len(entries)} entries "
                f"({len(kept)} findings) to {baseline_path}",
                file=sys.stderr,
            )
            return 0
        entries = load_baseline(baseline_path)
        kept, baselined, stale = apply_baseline(kept, entries)
        for entry in stale:
            got = entry.pop("_matched", 0)
            want = entry.get("count", 1)
            notes.append(
                f"stale baseline entry ({got} of {want} grandfathered "
                "occurrence(s) still present — lower count or remove): "
                + json.dumps(entry, sort_keys=True)
            )

    return emit(
        "udwn_analyze",
        kept,
        len(requested_rels),
        json_mode=args.json_mode,
        suppressed=suppressed_count,
        baselined=baselined,
        notes=notes,
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
