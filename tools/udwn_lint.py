#!/usr/bin/env python3
"""udwn_lint — repo-specific invariants no generic linter knows.

Rules (see docs/TOOLING.md for the full rationale):

  rng-source        All randomness must flow through udwn::Rng
                    (src/common/rng.*). rand()/srand(), std::random_device,
                    and <random> engine types anywhere else introduce hidden
                    per-process or per-run state that breaks "reproducible
                    from a single 64-bit seed".

  unordered-iter    Iterating a std::unordered_map/std::unordered_set is
                    address/hash-order dependent; if the loop feeds any
                    simulation decision the run is no longer deterministic
                    under seed. Use a sorted container, sort the keys first,
                    or prove the loop is order-insensitive and suppress.

  raw-assert        assert() vanishes under NDEBUG and bypasses the contract
                    subsystem (handlers, counters, diagnostics). Use
                    UDWN_EXPECT / UDWN_ENSURE (kept in release) or
                    UDWN_ASSERT (debug-only tier).

  float-eq          Floating-point ==/!= against literals in src/phy and
                    src/metric: SINR and distance computations must use
                    tolerances; exact comparison silently changes decisions
                    across optimization levels and architectures.

  chrono            Wall-clock reads (std::chrono, <chrono>) outside src/obs
                    and bench: simulation logic must be a pure function of
                    the seed, and timing belongs to the observability layer
                    (obs/clock.h) or the benchmarks. A clock read anywhere
                    else is either dead weight or a determinism leak.

Suppress a finding by putting `udwn-lint: allow(<rule>)` in a comment on the
same line, with a reason:   // udwn-lint: allow(float-eq): exact sentinel

Usage: udwn_lint.py PATH [PATH...]   (files or directories; exit 0 = clean)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}

# Files exempt from rng-source: the blessed RNG implementation itself.
RNG_HOME = re.compile(r"src/common/rng\.(h|cpp)$")

# float-eq applies only where numerics decide physics.
FLOAT_EQ_DIRS = ("src/phy", "src/metric")

# chrono is allowed only in the observability layer (the blessed obs_now_ns
# wrapper lives in src/obs/clock.h) and in benchmark/experiment code.
CHRONO_HOMES = ("src/obs", "bench")

CHRONO_BANNED = re.compile(r"std::chrono\b|#\s*include\s*<chrono>")

SUPPRESS = re.compile(r"udwn-lint:\s*allow\(([a-z-]+)\)")

RNG_BANNED = re.compile(
    r"(?<![\w:])(rand|srand)\s*\("
    r"|std::random_device|(?<!\w)random_device\b"
    r"|std::(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux\w+)"
)

RAW_ASSERT = re.compile(r"(?<![\w.])assert\s*\(|#\s*include\s*<(cassert|assert\.h)>")

FLOAT_LITERAL = r"(?:\d+\.\d*|\.\d+|\d+\.)(?:[eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?"
FLOAT_EQ = re.compile(
    rf"(?:(?:{FLOAT_LITERAL})\s*[!=]=)|(?:[!=]=\s*(?:{FLOAT_LITERAL}))"
)

UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;{=(]"
)
RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*?:\s*([^)]+)\)")
BEGIN_ITER = re.compile(r"(\w+)\s*\.\s*(?:begin|cbegin|rbegin)\s*\(")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line breaks so
    reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def lint_file(path: Path, repo_relative: str) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    suppressed: dict[int, set[str]] = {}
    for lineno, line in enumerate(raw_lines, 1):
        rules = set(SUPPRESS.findall(line))
        if rules:
            suppressed[lineno] = rules

    code_lines = strip_comments_and_strings(raw).splitlines()
    findings: list[Finding] = []

    def report(lineno: int, rule: str, message: str) -> None:
        if rule in suppressed.get(lineno, ()):
            return
        findings.append(Finding(path, lineno, rule, message))

    rng_exempt = bool(RNG_HOME.search(repo_relative))
    float_eq_applies = any(repo_relative.startswith(d) for d in FLOAT_EQ_DIRS)
    chrono_exempt = any(repo_relative.startswith(d) for d in CHRONO_HOMES)

    # Identifiers declared as unordered containers anywhere in this file.
    unordered_names = set()
    for line in code_lines:
        unordered_names.update(UNORDERED_DECL.findall(line))

    for lineno, line in enumerate(code_lines, 1):
        if not rng_exempt and (m := RNG_BANNED.search(line)):
            report(
                lineno,
                "rng-source",
                f"'{m.group(0).strip()}' outside src/common/rng.*: all "
                "randomness must flow through udwn::Rng (seed determinism)",
            )
        if RAW_ASSERT.search(line):
            report(
                lineno,
                "raw-assert",
                "raw assert(): use UDWN_EXPECT/UDWN_ENSURE (kept in release) "
                "or UDWN_ASSERT (debug tier) from common/contract.h",
            )
        if not chrono_exempt and CHRONO_BANNED.search(line):
            report(
                lineno,
                "chrono",
                "raw std::chrono outside src/obs and bench: simulation code "
                "must not read the wall clock; use obs_now_ns (obs/clock.h) "
                "from instrumentation, or move the timing into bench/",
            )
        if float_eq_applies and FLOAT_EQ.search(line):
            report(
                lineno,
                "float-eq",
                "floating-point ==/!= in a physics path: compare with a "
                "tolerance, or suppress with a reason if the value is an "
                "exact sentinel",
            )
        for m in RANGE_FOR.finditer(line):
            expr_idents = set(re.findall(r"\w+", m.group(1)))
            hit = expr_idents & unordered_names
            if hit:
                report(
                    lineno,
                    "unordered-iter",
                    f"range-for over unordered container '{sorted(hit)[0]}': "
                    "iteration order is hash/address dependent and must not "
                    "feed simulation decisions",
                )
        for m in BEGIN_ITER.finditer(line):
            if m.group(1) in unordered_names:
                report(
                    lineno,
                    "unordered-iter",
                    f"iterator over unordered container '{m.group(1)}': "
                    "iteration order is hash/address dependent and must not "
                    "feed simulation decisions",
                )

    return findings


def collect_files(arguments: list[str]) -> list[Path]:
    files: list[Path] = []
    for argument in arguments:
        p = Path(argument)
        if p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*")) if f.suffix in SOURCE_SUFFIXES
            )
        elif p.suffix in SOURCE_SUFFIXES:
            files.append(p)
    return files


def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0 if argv else 2

    repo_root = Path(__file__).resolve().parent.parent
    files = collect_files(argv)
    if not files:
        print("udwn_lint: no C++ sources under the given paths", file=sys.stderr)
        return 2

    all_findings: list[Finding] = []
    for f in files:
        try:
            relative = str(f.resolve().relative_to(repo_root))
        except ValueError:
            relative = str(f)
        all_findings.extend(lint_file(f, relative))

    for finding in all_findings:
        print(finding)
    print(
        f"udwn_lint: {len(files)} files, {len(all_findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
