#!/usr/bin/env python3
"""udwn_lint — repo-specific invariants no generic linter knows.

Rules (see docs/TOOLING.md for the full rationale):

  rng-source        All randomness must flow through udwn::Rng
                    (src/common/rng.*). rand()/srand(), std::random_device,
                    and <random> engine types anywhere else introduce hidden
                    per-process or per-run state that breaks "reproducible
                    from a single 64-bit seed".

  unordered-iter    Iterating a std::unordered_map/std::unordered_set is
                    address/hash-order dependent; if the loop feeds any
                    simulation decision the run is no longer deterministic
                    under seed. Use a sorted container, sort the keys first,
                    or prove the loop is order-insensitive and suppress.

  raw-assert        assert() vanishes under NDEBUG and bypasses the contract
                    subsystem (handlers, counters, diagnostics). Use
                    UDWN_EXPECT / UDWN_ENSURE (kept in release) or
                    UDWN_ASSERT (debug-only tier).

  float-eq          Floating-point ==/!= against literals in src/phy and
                    src/metric: SINR and distance computations must use
                    tolerances; exact comparison silently changes decisions
                    across optimization levels and architectures.

  chrono            Wall-clock reads (std::chrono, <chrono>) outside src/obs
                    and bench: simulation logic must be a pure function of
                    the seed, and timing belongs to the observability layer
                    (obs/clock.h) or the benchmarks. A clock read anywhere
                    else is either dead weight or a determinism leak.

Suppress a finding with `udwn-lint: allow(<rule>): reason` in a comment on
the same line:   // udwn-lint: allow(float-eq): exact sentinel
The reason is mandatory — a bare `allow(<rule>)` suppresses nothing and is
itself reported as `bad-suppression` (see docs/TOOLING.md).

Usage: udwn_lint.py [--json] [--src-root DIR] PATH [PATH...]
(files or directories; exit 0 = clean, 1 = findings, 2 = usage error)
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from udwn_report import (  # noqa: E402
    Finding,
    emit,
    parse_suppressions,
    strip_comments_and_strings,
)

SOURCE_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}

# Files exempt from rng-source: the blessed RNG implementation itself.
RNG_HOME = re.compile(r"src/common/rng\.(h|cpp)$")

# float-eq applies only where numerics decide physics.
FLOAT_EQ_DIRS = ("src/phy", "src/metric")

# chrono is allowed only in the observability layer (the blessed obs_now_ns
# wrapper lives in src/obs/clock.h) and in benchmark/experiment code.
CHRONO_HOMES = ("src/obs", "bench")

CHRONO_BANNED = re.compile(r"std::chrono\b|#\s*include\s*<chrono>")

RNG_BANNED = re.compile(
    r"(?<![\w:])(rand|srand)\s*\("
    r"|std::random_device|(?<!\w)random_device\b"
    r"|std::(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux\w+)"
)

RAW_ASSERT = re.compile(r"(?<![\w.])assert\s*\(|#\s*include\s*<(cassert|assert\.h)>")

FLOAT_LITERAL = r"(?:\d+\.\d*|\.\d+|\d+\.)(?:[eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?"
FLOAT_EQ = re.compile(
    rf"(?:(?:{FLOAT_LITERAL})\s*[!=]=)|(?:[!=]=\s*(?:{FLOAT_LITERAL}))"
)

UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;{=(]"
)
RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*?:\s*([^)]+)\)")
BEGIN_ITER = re.compile(r"(\w+)\s*\.\s*(?:begin|cbegin|rbegin)\s*\(")


def lint_file(path: Path, repo_relative: str) -> tuple[list[Finding], int]:
    """Findings plus the number of validly suppressed hits in this file."""
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    suppressed, findings = parse_suppressions(raw_lines, repo_relative)
    suppressed_hits = 0

    code_lines = strip_comments_and_strings(raw).splitlines()

    def report(lineno: int, rule: str, message: str) -> None:
        nonlocal suppressed_hits
        if rule in suppressed.get(lineno, ()):
            suppressed_hits += 1
            return
        findings.append(
            Finding(
                path=repo_relative, line=lineno, rule=rule, message=message
            )
        )

    rng_exempt = bool(RNG_HOME.search(repo_relative))
    float_eq_applies = any(repo_relative.startswith(d) for d in FLOAT_EQ_DIRS)
    chrono_exempt = any(repo_relative.startswith(d) for d in CHRONO_HOMES)

    # Identifiers declared as unordered containers anywhere in this file.
    unordered_names = set()
    for line in code_lines:
        unordered_names.update(UNORDERED_DECL.findall(line))

    for lineno, line in enumerate(code_lines, 1):
        if not rng_exempt and (m := RNG_BANNED.search(line)):
            report(
                lineno,
                "rng-source",
                f"'{m.group(0).strip()}' outside src/common/rng.*: all "
                "randomness must flow through udwn::Rng (seed determinism)",
            )
        if RAW_ASSERT.search(line):
            report(
                lineno,
                "raw-assert",
                "raw assert(): use UDWN_EXPECT/UDWN_ENSURE (kept in release) "
                "or UDWN_ASSERT (debug tier) from common/contract.h",
            )
        if not chrono_exempt and CHRONO_BANNED.search(line):
            report(
                lineno,
                "chrono",
                "raw std::chrono outside src/obs and bench: simulation code "
                "must not read the wall clock; use obs_now_ns (obs/clock.h) "
                "from instrumentation, or move the timing into bench/",
            )
        if float_eq_applies and FLOAT_EQ.search(line):
            report(
                lineno,
                "float-eq",
                "floating-point ==/!= in a physics path: compare with a "
                "tolerance, or suppress with a reason if the value is an "
                "exact sentinel",
            )
        for m in RANGE_FOR.finditer(line):
            expr_idents = set(re.findall(r"\w+", m.group(1)))
            hit = expr_idents & unordered_names
            if hit:
                report(
                    lineno,
                    "unordered-iter",
                    f"range-for over unordered container '{sorted(hit)[0]}': "
                    "iteration order is hash/address dependent and must not "
                    "feed simulation decisions",
                )
        for m in BEGIN_ITER.finditer(line):
            if m.group(1) in unordered_names:
                report(
                    lineno,
                    "unordered-iter",
                    f"iterator over unordered container '{m.group(1)}': "
                    "iteration order is hash/address dependent and must not "
                    "feed simulation decisions",
                )

    return findings, suppressed_hits


def collect_files(arguments: list[str], src_root: Path) -> list[Path]:
    files: list[Path] = []
    for argument in arguments:
        p = Path(argument)
        if not p.is_absolute() and not p.exists():
            p = src_root / argument
        if p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*")) if f.suffix in SOURCE_SUFFIXES
            )
        elif p.suffix in SOURCE_SUFFIXES:
            files.append(p)
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="udwn_lint.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("paths", nargs="+")
    parser.add_argument("--json", action="store_true", dest="json_mode")
    parser.add_argument(
        "--src-root",
        default=None,
        help="treat DIR as the repo root when computing rule scopes "
        "(fixture trees); default: the real repo root",
    )
    args = parser.parse_args(argv)

    src_root = (
        Path(args.src_root).resolve()
        if args.src_root
        else Path(__file__).resolve().parent.parent
    )
    files = collect_files(args.paths, src_root)
    if not files:
        print("udwn_lint: no C++ sources under the given paths", file=sys.stderr)
        return 2

    all_findings: list[Finding] = []
    suppressed = 0
    for f in files:
        try:
            relative = str(f.resolve().relative_to(src_root))
        except ValueError:
            relative = str(f)
        findings, hits = lint_file(f, relative)
        all_findings.extend(findings)
        suppressed += hits

    all_findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return emit(
        "udwn_lint",
        all_findings,
        len(files),
        json_mode=args.json_mode,
        suppressed=suppressed,
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
