// udwn_request — command-line client for udwnd (docs/SERVICE.md).
//
// Connects to the daemon's Unix socket, sends one request line per --line
// argument (or every line of stdin when no --line is given), then streams
// responses to stdout until every request has produced its terminal event
// (`summary`, `rejected`, or `status`) or --timeout-ms expires.
//
//   udwn_request --socket PATH [--line '{"type":...}']... [--timeout-ms N]
//
// Exit codes: 0 all requests answered; 1 connect/transport failure;
// 2 timed out waiting, or a response line that is not valid JSON (the CI
// service-smoke step relies on 2 to catch protocol regressions).
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <vector>

#include "common/env.h"
#include "svc/json.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--line JSON]... [--timeout-ms N]\n",
               argv0);
  return 2;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// `summary` and `rejected` end a run request; `status` ends a status
/// request. Anything else (accepted/progress/trial) is streaming noise.
bool is_terminal_event(const std::string& line) {
  std::string error;
  const auto json = udwn::svc::Json::parse(line, &error);
  if (!json.has_value()) {
    std::fprintf(stderr, "udwn_request: invalid response JSON (%s): %s\n",
                 error.c_str(), line.c_str());
    std::exit(2);
  }
  const udwn::svc::Json* event = json->find("event");
  if (event == nullptr) return false;
  const std::string name = event->as_string();
  return name == "summary" || name == "rejected" || name == "status";
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  if (const auto s = udwn::env_string("UDWN_SVC_SOCKET")) socket_path = *s;
  std::vector<std::string> lines;
  long long timeout_ms = 60000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--line" && i + 1 < argc) {
      lines.emplace_back(argv[++i]);
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      timeout_ms = std::atoll(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty()) return usage(argv[0]);
  if (lines.empty()) {
    std::string line;
    while (std::getline(std::cin, line))
      if (!line.empty()) lines.push_back(line);
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("udwn_request: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "udwn_request: socket path too long\n");
    return 1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    std::perror("udwn_request: connect");
    ::close(fd);
    return 1;
  }

  std::string payload;
  for (const std::string& line : lines) {
    payload += line;
    payload += '\n';
  }
  if (!send_all(fd, payload)) {
    std::perror("udwn_request: send");
    ::close(fd);
    return 1;
  }

  std::size_t terminals = 0;
  std::string buffer;
  char chunk[4096];
  while (terminals < lines.size()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready == 0) {
      std::fprintf(stderr, "udwn_request: timed out (%zu/%zu answered)\n",
                   terminals, lines.size());
      ::close(fd);
      return 2;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      std::perror("udwn_request: poll");
      ::close(fd);
      return 1;
    }
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      std::fprintf(stderr,
                   "udwn_request: connection closed (%zu/%zu answered)\n",
                   terminals, lines.size());
      ::close(fd);
      return 1;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      std::fwrite(line.data(), 1, line.size(), stdout);
      std::fputc('\n', stdout);
      if (is_terminal_event(line)) ++terminals;
    }
    buffer.erase(0, start);
  }
  std::fflush(stdout);
  ::close(fd);
  return 0;
}
