// udwn_trace — inspector for UDWNTRC1 binary traces (see obs/trace.h and
// docs/OBSERVABILITY.md).
//
// Default report: trace summary, a per-round timeline (transmissions,
// deliveries, collisions, mass-deliveries; bucketed when the run is long),
// the top-k hottest counters, histograms, and a contention heatmap (round
// buckets x transmitter-count buckets).
//
//   udwn_trace <trace> [--top K] [--rows N]
//              [--export-jsonl PATH] [--export-chrome PATH]
//              [--verify-roundtrip]
//
// --verify-roundtrip exports to both text formats (temp files next to the
// trace unless explicit paths are given), re-imports/counts them, and exits
// nonzero unless the JSONL round-trip reproduces the events, counters,
// histograms, and dropped count exactly (chrome must preserve the event
// count) — CI runs this against a fresh exp02 trace.
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace {

using udwn::EventKind;
using udwn::Trace;
using udwn::TraceEvent;

struct RoundAgg {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
  std::uint64_t mass = 0;
  std::uint64_t transitions = 0;
  std::uint32_t max_contention = 0;
  bool seen = false;
};

struct Options {
  std::string trace_path;
  std::string jsonl_path;
  std::string chrome_path;
  std::size_t top_k = 10;
  std::size_t max_rows = 40;
  bool verify_roundtrip = false;
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--top") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.top_k = std::strtoull(v, nullptr, 10);
    } else if (arg == "--rows") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.max_rows = std::strtoull(v, nullptr, 10);
      if (opt.max_rows == 0) return false;
    } else if (arg == "--export-jsonl") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.jsonl_path = v;
    } else if (arg == "--export-chrome") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.chrome_path = v;
    } else if (arg == "--verify-roundtrip") {
      opt.verify_roundtrip = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else if (opt.trace_path.empty()) {
      opt.trace_path = arg;
    } else {
      return false;
    }
  }
  return !opt.trace_path.empty();
}

std::vector<RoundAgg> aggregate_rounds(const Trace& trace,
                                       std::uint32_t& max_round) {
  max_round = 0;
  for (const TraceEvent& ev : trace.events)
    max_round = std::max(max_round, ev.round);
  std::vector<RoundAgg> rounds(trace.events.empty() ? 0 : max_round + 1);
  for (const TraceEvent& ev : trace.events) {
    RoundAgg& agg = rounds[ev.round];
    agg.seen = true;
    switch (static_cast<EventKind>(ev.kind)) {
      case EventKind::kSlotEnd:
        agg.transmissions += ev.node;
        agg.deliveries += ev.aux;
        agg.collisions += ev.value >> 32;
        agg.mass += ev.value & 0xffffffffu;
        agg.max_contention = std::max(agg.max_contention, ev.node);
        break;
      case EventKind::kStateTransition:
        ++agg.transitions;
        break;
      default:
        break;  // deliveries/mass are already aggregated via kSlotEnd
    }
  }
  return rounds;
}

void print_timeline(const std::vector<RoundAgg>& rounds,
                    std::size_t max_rows) {
  if (rounds.empty()) {
    std::printf("\n(no slot events in trace)\n");
    return;
  }
  // Bucket rounds so long runs stay readable: each row covers `stride`
  // consecutive rounds and sums their aggregates.
  const std::size_t stride = (rounds.size() + max_rows - 1) / max_rows;
  std::printf("\nper-round timeline (%zu rounds, %zu per row):\n",
              rounds.size(), stride);
  std::printf("  %-14s %12s %12s %12s %8s %11s\n", "round", "tx",
              "deliveries", "collisions", "mass", "transitions");
  for (std::size_t lo = 0; lo < rounds.size(); lo += stride) {
    const std::size_t hi = std::min(rounds.size(), lo + stride);
    RoundAgg sum;
    for (std::size_t r = lo; r < hi; ++r) {
      sum.transmissions += rounds[r].transmissions;
      sum.deliveries += rounds[r].deliveries;
      sum.collisions += rounds[r].collisions;
      sum.mass += rounds[r].mass;
      sum.transitions += rounds[r].transitions;
    }
    char label[32];
    if (hi - lo == 1)
      std::snprintf(label, sizeof(label), "%zu", lo);
    else
      std::snprintf(label, sizeof(label), "%zu-%zu", lo, hi - 1);
    std::printf("  %-14s %12llu %12llu %12llu %8llu %11llu\n", label,
                static_cast<unsigned long long>(sum.transmissions),
                static_cast<unsigned long long>(sum.deliveries),
                static_cast<unsigned long long>(sum.collisions),
                static_cast<unsigned long long>(sum.mass),
                static_cast<unsigned long long>(sum.transitions));
  }
}

void print_top_counters(const Trace& trace, std::size_t top_k) {
  std::vector<std::pair<std::string, std::uint64_t>> sorted = trace.counters;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  std::printf("\ntop counters:\n");
  const std::size_t k = std::min(top_k, sorted.size());
  for (std::size_t i = 0; i < k; ++i)
    std::printf("  %-36s %16llu\n", sorted[i].first.c_str(),
                static_cast<unsigned long long>(sorted[i].second));
  if (sorted.size() > k)
    std::printf("  ... %zu more (raise --top)\n", sorted.size() - k);
}

void print_histograms(const Trace& trace) {
  if (trace.histograms.empty()) return;
  std::printf("\nhistograms (power-of-two buckets):\n");
  for (const auto& hist : trace.histograms) {
    const double mean =
        hist.count == 0 ? 0.0
                        : static_cast<double>(hist.sum) /
                              static_cast<double>(hist.count);
    std::printf("  %-32s count=%llu mean=%.2f\n", hist.name.c_str(),
                static_cast<unsigned long long>(hist.count), mean);
  }
}

void print_heatmap(const std::vector<RoundAgg>& rounds) {
  if (rounds.empty()) return;
  // Rows: up to 20 round buckets. Columns: per-slot max contention, in
  // power-of-two buckets (0, 1, 2-3, 4-7, ...). Density scales with how
  // many rounds of the bucket peaked in that contention class.
  constexpr std::size_t kRows = 20;
  constexpr std::size_t kCols = 12;  // 0 .. >=2^10
  const char* shades = " .:-=+*#%@";
  const std::size_t stride = (rounds.size() + kRows - 1) / kRows;
  std::printf("\ncontention heatmap (rows: rounds, cols: peak tx/slot "
              "0,1,2-3,4-7,...):\n");
  std::printf("  %-14s ", "round");
  for (std::size_t c = 0; c < kCols; ++c)
    std::printf("%c", c < 10 ? static_cast<char>('0' + c) : '+');
  std::printf("\n");
  for (std::size_t lo = 0; lo < rounds.size(); lo += stride) {
    const std::size_t hi = std::min(rounds.size(), lo + stride);
    std::array<std::size_t, kCols> cells{};
    for (std::size_t r = lo; r < hi; ++r) {
      const std::uint32_t peak = rounds[r].max_contention;
      std::size_t col = 0;
      while (col + 1 < kCols && (std::uint32_t{1} << col) <= peak) ++col;
      if (peak == 0) col = 0;
      ++cells[col];
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%zu-%zu", lo, hi - 1);
    std::printf("  %-14s ", label);
    for (std::size_t c = 0; c < kCols; ++c) {
      const double frac =
          static_cast<double>(cells[c]) / static_cast<double>(hi - lo);
      const auto shade = static_cast<std::size_t>(frac * 9.0);
      std::printf("%c", shades[std::min<std::size_t>(shade, 9)]);
    }
    std::printf("\n");
  }
}

void print_shard_spans(const Trace& trace) {
  // Worker-side shard spans (EventKind::kShardSpan, opt-in via
  // ObsConfig::worker_spans): node = first listener column of the shard,
  // aux = #blocks, value = wall time in ns on the executing pool thread.
  // Grouping by shard start shows how evenly the field sharding splits one
  // slot's work across workers.
  struct ShardAgg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    std::uint32_t blocks = 0;
  };
  std::vector<std::pair<std::uint32_t, ShardAgg>> shards;
  for (const TraceEvent& ev : trace.events) {
    if (static_cast<EventKind>(ev.kind) != EventKind::kShardSpan) continue;
    auto it = std::find_if(shards.begin(), shards.end(),
                           [&](const auto& s) { return s.first == ev.node; });
    if (it == shards.end()) {
      shards.emplace_back(ev.node, ShardAgg{});
      it = std::prev(shards.end());
    }
    ShardAgg& agg = it->second;
    ++agg.count;
    agg.total_ns += ev.value;
    agg.max_ns = std::max(agg.max_ns, ev.value);
    agg.blocks = ev.aux;
  }
  if (shards.empty()) return;
  std::sort(shards.begin(), shards.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::printf("\nshard spans (worker-side field sharding):\n");
  std::printf("  %-14s %8s %8s %12s %12s %12s\n", "first column", "blocks",
              "spans", "total us", "mean us", "max us");
  for (const auto& [first_col, agg] : shards) {
    const double mean_us =
        agg.count == 0
            ? 0.0
            : static_cast<double>(agg.total_ns) /
                  (1e3 * static_cast<double>(agg.count));
    std::printf("  %-14u %8u %8llu %12.1f %12.2f %12.2f\n", first_col,
                agg.blocks, static_cast<unsigned long long>(agg.count),
                static_cast<double>(agg.total_ns) / 1e3, mean_us,
                static_cast<double>(agg.max_ns) / 1e3);
  }
}

bool same_histograms(const Trace& a, const Trace& b) {
  if (a.histograms.size() != b.histograms.size()) return false;
  for (std::size_t i = 0; i < a.histograms.size(); ++i) {
    const auto& x = a.histograms[i];
    const auto& y = b.histograms[i];
    if (x.name != y.name || x.count != y.count || x.sum != y.sum ||
        x.buckets != y.buckets)
      return false;
  }
  return true;
}

int verify_roundtrip(const Options& opt, const Trace& trace) {
  const std::string jsonl = opt.jsonl_path.empty()
                                ? opt.trace_path + ".jsonl"
                                : opt.jsonl_path;
  const std::string chrome = opt.chrome_path.empty()
                                 ? opt.trace_path + ".chrome.json"
                                 : opt.chrome_path;
  if (!udwn::export_jsonl(jsonl, trace)) {
    std::fprintf(stderr, "roundtrip: jsonl export failed: %s\n",
                 jsonl.c_str());
    return 1;
  }
  if (!udwn::export_chrome(chrome, trace)) {
    std::fprintf(stderr, "roundtrip: chrome export failed: %s\n",
                 chrome.c_str());
    return 1;
  }
  const auto reimported = udwn::import_jsonl(jsonl);
  if (!reimported.has_value()) {
    std::fprintf(stderr, "roundtrip: jsonl re-import failed\n");
    return 1;
  }
  if (reimported->events.size() != trace.events.size() ||
      reimported->events != trace.events) {
    std::fprintf(stderr,
                 "roundtrip: jsonl event mismatch (%zu vs %zu events)\n",
                 reimported->events.size(), trace.events.size());
    return 1;
  }
  // Metric aggregates must survive too — counter/histogram names can carry
  // arbitrary bytes, so this exercises the full JSON escape round-trip,
  // not just the numeric event records.
  if (reimported->counters != trace.counters) {
    std::fprintf(stderr,
                 "roundtrip: jsonl counter mismatch (%zu vs %zu counters)\n",
                 reimported->counters.size(), trace.counters.size());
    return 1;
  }
  if (!same_histograms(*reimported, trace)) {
    std::fprintf(stderr,
                 "roundtrip: jsonl histogram mismatch (%zu vs %zu "
                 "histograms)\n",
                 reimported->histograms.size(), trace.histograms.size());
    return 1;
  }
  if (reimported->dropped != trace.dropped) {
    std::fprintf(stderr,
                 "roundtrip: jsonl dropped-count mismatch (%llu vs %llu)\n",
                 static_cast<unsigned long long>(reimported->dropped),
                 static_cast<unsigned long long>(trace.dropped));
    return 1;
  }
  const auto chrome_count = udwn::count_chrome_events(chrome);
  if (!chrome_count.has_value() || *chrome_count != trace.events.size()) {
    std::fprintf(stderr,
                 "roundtrip: chrome event count mismatch (%llu vs %zu)\n",
                 static_cast<unsigned long long>(
                     chrome_count.value_or(0)),
                 trace.events.size());
    return 1;
  }
  std::printf("roundtrip OK: %zu events, %zu counters, %zu histograms in "
              "binary == jsonl (events == chrome)\n",
              trace.events.size(), trace.counters.size(),
              trace.histograms.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: udwn_trace <trace> [--top K] [--rows N]\n"
                 "                  [--export-jsonl PATH] "
                 "[--export-chrome PATH] [--verify-roundtrip]\n");
    return 2;
  }

  const auto trace = udwn::read_trace_file(opt.trace_path);
  if (!trace.has_value()) {
    std::fprintf(stderr, "failed to read trace: %s\n",
                 opt.trace_path.c_str());
    return 1;
  }

  std::printf("trace %s: %zu events, %zu counters, %zu histograms",
              opt.trace_path.c_str(), trace->events.size(),
              trace->counters.size(), trace->histograms.size());
  if (trace->dropped > 0)
    std::printf(" (%llu events dropped by ring overflow)",
                static_cast<unsigned long long>(trace->dropped));
  std::printf("\n");

  std::uint32_t max_round = 0;
  const std::vector<RoundAgg> rounds = aggregate_rounds(*trace, max_round);
  print_timeline(rounds, opt.max_rows);
  print_top_counters(*trace, opt.top_k);
  print_histograms(*trace);
  print_heatmap(rounds);
  print_shard_spans(*trace);

  int status = 0;
  if (opt.verify_roundtrip) {
    status = verify_roundtrip(opt, *trace);
  } else {
    if (!opt.jsonl_path.empty() &&
        !udwn::export_jsonl(opt.jsonl_path, *trace)) {
      std::fprintf(stderr, "jsonl export failed: %s\n",
                   opt.jsonl_path.c_str());
      status = 1;
    }
    if (!opt.chrome_path.empty() &&
        !udwn::export_chrome(opt.chrome_path, *trace)) {
      std::fprintf(stderr, "chrome export failed: %s\n",
                   opt.chrome_path.c_str());
      status = 1;
    }
  }
  return status;
}
