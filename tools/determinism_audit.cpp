// determinism_audit — checked invariants:
//
//  1. Run-twice: a dynamic-broadcast scenario run twice under the same seed
//     produces bit-for-bit identical event traces.
//  2. Pipeline matrix: the same scenario resolved through every slot
//     pipeline configuration — brute-force uncached, epoch-invalidated
//     (delta_invalidation off), delta-invalidated, serial and
//     multi-threaded kernels — yields one identical trace. This is the
//     executable form of the resolve_into ≡ resolve contract
//     (docs/ENGINE.md) under full dynamics: churn AND mobility invalidate
//     the caches every round, so delta ≡ epoch ≡ uncached is checked where
//     it matters, not on a static topology.
//
// Builds the EXP-10 style workload (cluster chain, node churn + bounded
// mobility, Bcast(beta) with two slots per round), runs it through
// the DeterminismAuditor, and reports the per-run trace hashes and the
// first divergent round if any. Exit code 0 = identical, 1 = divergence.
//
// Wired into ctest so "deterministic under seed" is enforced on every test
// run, not assumed. `--inject` deliberately perturbs the second run (one
// extra RNG draw on one node) to demonstrate the auditor catches real
// nondeterminism; that mode must exit nonzero.
//
//   determinism_audit [--seed N] [--rounds N] [--clusters N] [--threads N]
//                     [--no-matrix] [--inject]
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include <condition_variable>
#include <mutex>

#include "analysis/determinism.h"
#include "analysis/runner.h"
#include "analysis/scenario.h"
#include "baselines/jks_broadcast.h"
#include "baselines/opportunistic.h"
#include "common/rng.h"
#include "core/broadcast.h"
#include "metric/matrix_metric.h"
#include "obs/obs.h"
#include "sim/batch.h"
#include "sim/dynamics.h"
#include "svc/exec.h"
#include "svc/request.h"
#include "svc/service.h"
#include "topo/generators.h"

namespace udwn {
namespace {

struct Options {
  std::uint64_t seed = 12345;
  Round rounds = 300;
  std::size_t clusters = 8;
  int threads = 4;
  bool matrix = true;
  bool inject = false;
};

/// Slot-pipeline knobs under audit (subset of EngineConfig).
struct PipelineConfig {
  const char* label;
  bool cache_topology;
  bool use_spatial_grid;
  int threads;
  bool soa_kernel;
  /// Per-node delta invalidation (EngineConfig::delta_invalidation);
  /// false = the pure epoch-invalidation reference path.
  bool delta_invalidation = true;
  /// Attach an Obs handle for the run: observability must be a pure
  /// observer, so the trace hash has to match the reference exactly.
  bool obs = false;
  /// Explicit SIMD intrinsics for the SoA kernel (EngineConfig::simd);
  /// false = autovectorized reference. Both must hash identically.
  bool simd = true;
  /// Certified far-field approximation (EngineConfig::far_field_eps).
  /// Nonzero rows are NOT compared against the exact reference — only
  /// against each other (self-determinism across thread counts).
  double far_field_eps = 0.0;
  /// Far-field cell side as a multiple of the model max range.
  double far_field_cell_factor = 2.0;
  /// Gain tile width: small values force multi-block rows at audit sizes
  /// so the sharded field path (threads > 1, blocks >= threads) engages.
  std::size_t gain_tile_cols = 4096;
};

void run_dynamic_broadcast(const Options& options, bool perturb,
                           const PipelineConfig& pipeline,
                           TraceHashRecorder& recorder) {
  Rng topo_rng(options.seed);
  auto points = cluster_chain(options.clusters, 6, 0.6, 0.05, topo_rng);
  Scenario scenario(std::move(points), ScenarioConfig{});
  const std::size_t n = scenario.network().size();
  const NodeId source(0);

  auto protocols = make_protocols(n, [&](NodeId id) {
    return std::make_unique<BcastProtocol>(TryAdjust::standard(n, 2.0),
                                           BcastProtocol::Mode::Dynamic,
                                           id == source);
  });
  const CarrierSensing sensing = scenario.sensing_broadcast();
  std::unique_ptr<Obs> obs;
  if (pipeline.obs)
    obs = std::make_unique<Obs>(ObsConfig{.state_transitions = true});
  Engine engine(scenario.channel(), scenario.network(), sensing, protocols,
                EngineConfig{.slots_per_round = 2,
                             .seed = options.seed,
                             .threads = pipeline.threads,
                             .cache_topology = pipeline.cache_topology,
                             .delta_invalidation = pipeline.delta_invalidation,
                             .use_spatial_grid = pipeline.use_spatial_grid,
                             .soa_kernel = pipeline.soa_kernel,
                             .simd = pipeline.simd,
                             .far_field_eps = pipeline.far_field_eps,
                             .far_field_cell_factor =
                                 pipeline.far_field_cell_factor,
                             .gain_tile_cols = pipeline.gain_tile_cols,
                             .obs = obs.get()});

  ChurnDynamics churn({.arrival_rate = 0.05,
                       .departure_rate = 0.05,
                       .pinned = {source}});
  WaypointMobility mobility(
      *scenario.euclidean(),
      {.speed = 0.004, .extent = 0.6 * static_cast<double>(options.clusters)});
  std::vector<Dynamics*> parts{&churn, &mobility};
  CompositeDynamics dynamics(parts);
  engine.set_dynamics(&dynamics);
  engine.set_recorder(&recorder);

  for (Round r = 0; r < options.rounds; ++r) {
    if (perturb && r == options.rounds / 2) {
      // Injected nondeterminism: an off-trace RNG draw, exactly the class
      // of bug (shared-stream misuse) the auditor exists to catch.
      Rng rogue(options.seed ^ 0xdeadbeefull);
      const Vec2 p = scenario.euclidean()->position(source);
      scenario.euclidean()->set_position(
          source, {p.x + rogue.uniform() * 1e-9, p.y});
    }
    engine.step();
  }
}

/// Pipeline matrix: one trace per configuration, all compared against the
/// brute-force serial reference. Any divergence is a bug in the cache /
/// grid / parallel kernels, not scheduling noise — the contract is
/// bit-exact equality.
int run_pipeline_matrix(const Options& options) {
  const PipelineConfig configs[] = {
      {"uncached-serial", false, false, 1, false, false},
      {"epoch-serial", true, true, 1, false, /*delta=*/false},
      {"delta-serial", true, true, 1, false, /*delta=*/true},
      {"soa-kernel", true, true, 1, true, true},
      {"epoch-threads", true, true, options.threads, true, /*delta=*/false},
      {"delta-threads", true, true, options.threads, true, /*delta=*/true},
      {"obs-on", true, true, options.threads, true, true, /*obs=*/true},
      {"simd-off", true, true, options.threads, true, true, false,
       /*simd=*/false},
      // 8-column tiles: blocks = ceil(n/8) >= threads at audit sizes, so
      // the fused plan/fill shard path runs every slot.
      {"sharded", true, true, options.threads, true, true, false, true, 0.0,
       2.0, /*gain_tile_cols=*/8},
  };
  std::vector<TraceHashRecorder> traces(std::size(configs));
  for (std::size_t i = 0; i < std::size(configs); ++i)
    run_dynamic_broadcast(options, /*perturb=*/false, configs[i], traces[i]);

  int failures = 0;
  std::cout << "  pipeline matrix (reference: " << configs[0].label << ")\n";
  for (std::size_t i = 1; i < std::size(configs); ++i) {
    const DeterminismReport report =
        DeterminismAuditor::compare(traces[0], traces[i]);
    std::cout << "    vs " << configs[i].label << ": " << to_string(report)
              << "\n";
    if (!report.deterministic) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

/// Far-field group: ε-certified approximate rounds are NOT bit-identical
/// to the exact reference (only certified against it, see far_field.h), so
/// the audit here is self-determinism: serial, threaded, and a threaded
/// repeat must produce one identical trace — the approximation must be a
/// pure function of the seed, never of scheduling.
int run_far_field_group(const Options& options) {
  PipelineConfig serial{"far-field-serial", true, true, 1, true};
  serial.far_field_eps = 0.5;
  serial.far_field_cell_factor = 0.25;  // ρ inside the chain extent
  PipelineConfig threaded = serial;
  threaded.label = "far-field-threads";
  threaded.threads = options.threads;
  const PipelineConfig configs[] = {serial, threaded, threaded};
  std::vector<TraceHashRecorder> traces(std::size(configs));
  for (std::size_t i = 0; i < std::size(configs); ++i)
    run_dynamic_broadcast(options, /*perturb=*/false, configs[i], traces[i]);

  int failures = 0;
  std::cout << "  far-field self-determinism (eps=0.5, reference: "
            << configs[0].label << ")\n";
  for (std::size_t i = 1; i < std::size(configs); ++i) {
    const DeterminismReport report =
        DeterminismAuditor::compare(traces[0], traces[i]);
    std::cout << "    vs " << configs[i].label << (i == 2 ? " (repeat)" : "")
              << ": " << to_string(report) << "\n";
    if (!report.deterministic) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

/// Batch check: K trials through BatchRunner(threads) must produce exactly
/// the per-trial traces a serial loop produces — the executable form of the
/// seed-stream discipline sim/batch.h documents.
int run_batch_check(const Options& options) {
  constexpr std::size_t kTrials = 3;
  const PipelineConfig pipeline{"cached+grid-serial", true, true, 1, true};
  const auto seeds = BatchRunner::trial_seeds(options.seed, kTrials);

  auto trial_hash = [&](std::size_t k) {
    Options trial = options;
    trial.seed = seeds[k];
    trial.rounds = options.rounds / 2;
    TraceHashRecorder recorder;
    run_dynamic_broadcast(trial, /*perturb=*/false, pipeline, recorder);
    return recorder.final_hash();
  };

  std::vector<std::uint64_t> serial(kTrials);
  for (std::size_t k = 0; k < kTrials; ++k) serial[k] = trial_hash(k);

  BatchRunner runner(BatchConfig{.threads = options.threads});
  const auto batched = runner.run(kTrials, trial_hash);

  int failures = 0;
  std::cout << "  batch(threads=" << options.threads << "): ";
  for (std::size_t k = 0; k < kTrials; ++k)
    if (batched[k] != serial[k]) ++failures;
  if (failures == 0) {
    std::cout << kTrials << " trials, per-trial trace hashes identical to "
              << "serial\n";
  } else {
    std::cout << failures << " of " << kTrials
              << " trials diverged from serial\n";
  }
  if (failures != 0) return 1;

  // Fault-isolating path with a generous rounds budget armed: run_checked
  // installs the throwing contract handler and a per-trial TrialBudget, and
  // neither may perturb a fault-free trial — same hashes, every status ok.
  // (The rounds-only budget reads no clock, so this row is as bit-exact a
  // contract as the strict one above.)
  BatchConfig budgeted{.threads = options.threads};
  budgeted.max_rounds =
      static_cast<std::uint64_t>(options.rounds) * 1000 + 1000;
  BatchRunner checked_runner(budgeted);
  const auto outcome = checked_runner.run_checked(kTrials, trial_hash);
  std::cout << "  batch-checked(budget=" << budgeted.max_rounds
            << " rounds): ";
  if (!outcome.ok()) {
    std::cout << outcome.errors.size() << " of " << kTrials
              << " fault-free trials reported an error\n";
    return 1;
  }
  for (std::size_t k = 0; k < kTrials; ++k)
    if (outcome.results[k] != serial[k]) ++failures;
  if (failures == 0) {
    std::cout << kTrials << " trials, budgets + fault isolation armed, "
              << "hashes identical to serial\n";
  } else {
    std::cout << failures << " of " << kTrials
              << " trials diverged from serial\n";
  }
  return failures == 0 ? 0 : 1;
}

/// Service group (docs/SERVICE.md): the scenario service promises that
/// per-trial record BYTES are a pure function of (request, seed). Audit it
/// the same way the engine matrix is audited — one serial run_trial
/// reference, then the full ScenarioService at several worker/pool/block
/// shapes, all required to emit identical trial lines in identical order.
int run_svc_group(const Options& options) {
  svc::RunRequest request;
  request.id = "audit";
  request.protocol = svc::ProtocolKind::kBcast;
  request.topology.kind = svc::TopologyKind::kClusterChain;
  request.topology.clusters = 4;
  request.topology.per_cluster = 5;
  request.dynamics.churn_rate = 0.02;
  request.trials = 4;
  request.seed = options.seed;

  const auto seeds = BatchRunner::trial_seeds(request.seed, request.trials);
  std::vector<std::string> reference;
  for (std::uint32_t k = 0; k < request.trials; ++k) {
    svc::TrialRecord record =
        svc::run_trial(request, svc::ExecConfig{}, seeds[k], k);
    record.status = "ok";
    reference.push_back(svc::encode_trial(request.id, record));
  }

  struct Shape {
    const char* label;
    int workers;
    int trial_threads;
    std::uint32_t progress_every;
  };
  const Shape shapes[] = {
      {"svc(workers=1,pool=1,block=32)", 1, 1, 32},
      {"svc(workers=2,pool=4,block=1)", 2, options.threads, 1},
      {"svc(workers=4,pool=2,block=3)", 4, 2, 3},
  };

  int failures = 0;
  std::cout << "  service record bytes (reference: serial run_trial)\n";
  for (const Shape& shape : shapes) {
    svc::ScenarioService service({.workers = shape.workers,
                                  .trial_threads = shape.trial_threads,
                                  .progress_every = shape.progress_every});
    std::mutex mutex;
    std::condition_variable cv;
    bool finished = false;
    std::vector<std::string> trial_lines;
    svc::ParsedRequest parsed;
    parsed.id = request.id;
    parsed.run = request;
    service.submit(
        parsed,
        [&](const std::string& line) {
          if (line.find("\"event\":\"trial\"") == std::string::npos) return;
          std::lock_guard<std::mutex> lock(mutex);
          trial_lines.push_back(line);
        },
        [&]() {
          // Notify under the lock: the waiter owns cv on its stack and may
          // destroy it as soon as the predicate holds.
          std::lock_guard<std::mutex> lock(mutex);
          finished = true;
          cv.notify_all();
        });
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return finished; });
    }
    const bool identical = trial_lines == reference;
    std::cout << "    vs " << shape.label << ": "
              << (identical ? "identical" : "DIVERGED") << " ("
              << trial_lines.size() << " records)\n";
    if (!identical) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

/// Baselines group (EXP-18 arena): the competitor protocols join the audit
/// matrix. JKS under the frontier-driven TIntervalAdversary is the strong
/// row — its {0,1} probabilities short-circuit Rng::chance and consume no
/// randomness, so beyond the usual pipeline shapes even a DIFFERENT ENGINE
/// SEED must hash identically. The opportunistic protocol draws real
/// probabilities under churn, so its contract is the standard one: a pure
/// function of the seed across delta/epoch invalidation and thread counts.
int run_baselines_group(const Options& options) {
  struct Shape {
    const char* label;
    int threads;
    bool delta;
    std::uint64_t seed;
  };
  const std::uint64_t base_seed = options.seed;
  constexpr Round kRounds = 120;

  auto run_jks = [&](const Shape& shape, TraceHashRecorder& recorder) {
    constexpr std::size_t n = 24;
    Scenario scenario(
        std::make_unique<MatrixMetric>(n, isolated_distances(n, 1.0e6)),
        ScenarioConfig{});
    auto* matrix = static_cast<MatrixMetric*>(&scenario.metric());
    const NodeId source(0);
    auto protocols = make_protocols(n, [&](NodeId id) {
      return std::make_unique<JksBroadcastProtocol>(id, n, id == source);
    });
    const CarrierSensing sensing = scenario.sensing_local();
    Engine engine(scenario.channel(), scenario.network(), sensing, protocols,
                  EngineConfig{.seed = shape.seed,
                               .threads = shape.threads,
                               .delta_invalidation = shape.delta});
    TIntervalAdversary adversary(*matrix, {.interval = 4});
    adversary.set_frontier([&protocols](NodeId v) {
      return static_cast<const JksBroadcastProtocol&>(*protocols[v.value])
          .informed();
    });
    engine.set_dynamics(&adversary);
    engine.set_recorder(&recorder);
    for (Round r = 0; r < kRounds; ++r) engine.step();
  };

  auto run_oppo = [&](const Shape& shape, TraceHashRecorder& recorder) {
    Rng topo_rng(base_seed);
    Scenario scenario(cluster_chain(4, 5, 0.6, 0.05, topo_rng),
                      ScenarioConfig{});
    const std::size_t n = scenario.network().size();
    const NodeId source(0);
    auto protocols = make_protocols(n, [&](NodeId id) {
      return std::make_unique<OpportunisticDisseminationProtocol>(
          OpportunisticDisseminationProtocol::Config{}, id == source);
    });
    const CarrierSensing sensing = scenario.sensing_local();
    Engine engine(scenario.channel(), scenario.network(), sensing, protocols,
                  EngineConfig{.seed = shape.seed,
                               .threads = shape.threads,
                               .delta_invalidation = shape.delta});
    ChurnDynamics churn({.arrival_rate = 0.05,
                         .departure_rate = 0.05,
                         .pinned = {source}});
    engine.set_dynamics(&churn);
    engine.set_recorder(&recorder);
    for (Round r = 0; r < kRounds; ++r) engine.step();
  };

  auto audit_rows = [&](const char* name, auto&& runner,
                        bool seed_invariant) {
    const Shape reference{"serial-delta", 1, true, base_seed};
    TraceHashRecorder ref_trace;
    runner(reference, ref_trace);
    std::vector<Shape> rows = {
        {"serial-epoch", 1, false, base_seed},
        {"threads", options.threads, true, base_seed},
        {"threads (repeat)", options.threads, true, base_seed},
    };
    if (seed_invariant)
      rows.push_back({"other-engine-seed", 1, true,
                      base_seed ^ 0x9e3779b97f4a7c15ull});
    int bad = 0;
    for (const Shape& shape : rows) {
      TraceHashRecorder trace;
      runner(shape, trace);
      const DeterminismReport report =
          DeterminismAuditor::compare(ref_trace, trace);
      std::cout << "    " << name << " vs " << shape.label << ": "
                << to_string(report) << "\n";
      if (!report.deterministic) ++bad;
    }
    return bad;
  };

  std::cout << "  baselines (reference: serial-delta)\n";
  int failures = audit_rows("jks+adversary", run_jks, /*seed_invariant=*/true);
  failures += audit_rows("opportunistic+churn", run_oppo, false);
  return failures == 0 ? 0 : 1;
}

int run(const Options& options) {
  const PipelineConfig reference{"cached+grid-serial", true, true, 1, true};
  int call = 0;
  const DeterminismReport report = DeterminismAuditor::audit(
      [&](TraceHashRecorder& recorder) {
        const bool perturb = options.inject && call++ == 1;
        run_dynamic_broadcast(options, perturb, reference, recorder);
      });

  std::cout << "determinism_audit: dynamic broadcast, seed " << options.seed
            << ", " << options.rounds << " rounds, " << options.clusters
            << " clusters" << (options.inject ? ", INJECTED FAULT" : "")
            << "\n  " << to_string(report) << "\n";

  if (options.inject) {
    // Self-test mode: success means the fault was *detected*. The matrix is
    // skipped — the perturbation would (correctly) fail it.
    if (!report.deterministic) {
      std::cout << "  injected nondeterminism detected as expected\n";
      return 0;
    }
    std::cout << "  ERROR: injected nondeterminism was NOT detected\n";
    return 1;
  }
  int rc = report.deterministic ? 0 : 1;
  if (options.matrix && rc == 0) rc = run_pipeline_matrix(options);
  if (options.matrix && rc == 0) rc = run_far_field_group(options);
  if (options.matrix && rc == 0) rc = run_batch_check(options);
  if (options.matrix && rc == 0) rc = run_svc_group(options);
  if (options.matrix && rc == 0) rc = run_baselines_group(options);
  return rc;
}

}  // namespace
}  // namespace udwn

namespace {

[[noreturn]] void usage_error(const char* detail) {
  std::cerr << "determinism_audit: " << detail << "\n"
            << "usage: determinism_audit [--seed N] [--rounds N] "
               "[--clusters N] [--threads N] [--no-matrix] [--inject]\n";
  std::exit(2);
}

std::uint64_t parse_u64(const char* flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || text[0] == '-')
    usage_error((std::string(flag) += " expects a non-negative integer")
                    .c_str());
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  udwn::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--seed" && has_value) {
      options.seed = parse_u64("--seed", argv[++i]);
    } else if (arg == "--rounds" && has_value) {
      options.rounds = static_cast<udwn::Round>(
          parse_u64("--rounds", argv[++i]));
    } else if (arg == "--clusters" && has_value) {
      options.clusters = parse_u64("--clusters", argv[++i]);
      if (options.clusters == 0) usage_error("--clusters must be >= 1");
    } else if (arg == "--threads" && has_value) {
      options.threads = static_cast<int>(parse_u64("--threads", argv[++i]));
      if (options.threads < 1) usage_error("--threads must be >= 1");
    } else if (arg == "--no-matrix") {
      options.matrix = false;
    } else if (arg == "--inject") {
      options.inject = true;
    } else {
      usage_error("unrecognized or incomplete argument");
    }
  }
  return udwn::run(options);
}
