"""Shared reporting layer for the repo's static checkers.

`udwn_lint.py` (line regexes) and `udwn_analyze.py` (AST/call-graph passes)
produce the same `Finding` records and route them through `emit()`, so CI
gets one machine-readable format (`--json`) and one annotation style instead
of two tools' worth of stderr grepping.

Conventions enforced here:

  * Suppressions. A finding is silenced by a comment on the same line:
        // udwn-lint: allow(<rule>): <reason>
    The reason is mandatory. A bare `allow(<rule>)` with no reason does NOT
    suppress; it is reported as a `bad-suppression` finding instead, so a
    typo can never silently disable a rule.

  * Baseline. `udwn_analyze.py` supports a committed JSON baseline for
    grandfathered findings (e.g. container growth on buffers whose capacity
    a warm-up run sizes). Baseline entries match on (rule, path, symbol,
    what) — never on line numbers, which drift. Each entry absorbs at most
    `count` findings (default 1), so a *new* allocation of an already
    grandfathered kind in the same function still fails the gate instead of
    being silently swallowed.

  * Exit codes. 0 = clean, 1 = unsuppressed findings, 2 = usage error.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import sys
from pathlib import Path
from typing import Iterable

#: `udwn-lint: allow(rule): reason` — reason (non-space after the colon)
#: required; see module docstring.
SUPPRESS_WITH_REASON = re.compile(r"udwn-lint:\s*allow\(([a-z-]+)\):\s*\S")
#: Any allow() spelling at all, used to detect reason-less suppressions.
SUPPRESS_ANY = re.compile(r"udwn-lint:\s*allow\(([a-z-]+)\)(?!\s*:\s*\S)")


@dataclasses.dataclass
class Finding:
    """One rule violation at a source location.

    `symbol` names the enclosing function (qualified) or include target;
    `what` is the specific construct (e.g. `push_back`, `std::getenv`,
    an include path). Both feed baseline matching. `chain` is the hot
    call path root → ... → offender for hot-path-alloc findings.
    """

    path: str
    line: int
    rule: str
    message: str
    symbol: str = ""
    what: str = ""
    chain: tuple[str, ...] = ()

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.chain:
            text += "\n    hot path: " + " -> ".join(self.chain)
        return text


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line breaks
    so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c == "'" and out and (out[-1].isalnum() or out[-1] == "_"):
            # A ' directly after an identifier/number character is a C++14
            # digit separator (1'000'000, 0xFFFF'FFFF), not a char-literal
            # opener — entering the literal branch here would blank the rest
            # of the file on lines with an odd number of separators.
            # (Encoding-prefixed char literals like L'x' also land here and
            # are passed through as code; their one-char payload is inert to
            # every rule.)
            out.append(c)
            i += 1
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] not in (quote, "\n"):
                if text[i] == "\\" and i + 1 < n and text[i + 1] != "\n":
                    i += 1
                i += 1
            if i < n and text[i] == quote:
                i += 1
            # else: no closing quote on this line — a misparsed quote must
            # not blank past the line it started on; the newline is handled
            # by the outer loop.
        else:
            out.append(c)
            i += 1
    return "".join(out)


def parse_suppressions(
    raw_lines: list[str], path: str
) -> tuple[dict[int, set[str]], list[Finding]]:
    """Per-line suppressed rule sets, plus `bad-suppression` findings for
    every allow() that is missing its `: reason` text."""
    suppressed: dict[int, set[str]] = {}
    bad: list[Finding] = []
    for lineno, line in enumerate(raw_lines, 1):
        rules = set(SUPPRESS_WITH_REASON.findall(line))
        if rules:
            suppressed[lineno] = rules
        for rule in SUPPRESS_ANY.findall(line):
            bad.append(
                Finding(
                    path=path,
                    line=lineno,
                    rule="bad-suppression",
                    message=f"allow({rule}) without a reason: suppressions "
                    'must read `udwn-lint: allow(rule): reason` — the bare '
                    "form does not suppress anything",
                    what=rule,
                )
            )
    return suppressed, bad


# --- Baseline ---------------------------------------------------------------


def load_baseline(path: Path) -> list[dict]:
    """Read a baseline file: {"findings": [{rule, path, symbol, what,
    count?}...]}. `count` caps how many findings the entry absorbs
    (default 1)."""
    if not path.is_file():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("findings", [])
    for entry in entries:
        count = entry.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise SystemExit(
                f"{path}: baseline entry {json.dumps(entry, sort_keys=True)} "
                "has a non-positive/non-integer 'count'"
            )
        entry["count"] = count
    return entries


def baseline_entry(finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "symbol": finding.symbol,
        "what": finding.what,
    }


def apply_baseline(
    findings: list[Finding], entries: list[dict]
) -> tuple[list[Finding], int, list[dict]]:
    """Split findings into (kept, baselined_count, stale_entries).

    Each entry absorbs at most entry["count"] matching findings; the
    excess stays in `kept`, so adding a new allocation of an already
    grandfathered kind still fails the gate. Entries that matched fewer
    findings than their count are returned as stale (with a `_matched`
    annotation) so the baseline shrinks as code improves.
    """
    remaining: list[Finding] = []
    matched = [0] * len(entries)
    baselined = 0
    for finding in findings:
        hit = False
        for k, entry in enumerate(entries):
            if (
                matched[k] < entry.get("count", 1)
                and entry.get("rule") == finding.rule
                and entry.get("path") == finding.path
                and entry.get("symbol", "") == finding.symbol
                and entry.get("what", "") == finding.what
            ):
                matched[k] += 1
                baselined += 1
                hit = True
                break
        if not hit:
            remaining.append(finding)
    stale = [
        {**entry, "_matched": matched[k]}
        for k, entry in enumerate(entries)
        if matched[k] < entry.get("count", 1)
    ]
    return remaining, baselined, stale


# --- Emission ---------------------------------------------------------------


def emit(
    tool: str,
    findings: Iterable[Finding],
    files_scanned: int,
    *,
    json_mode: bool = False,
    suppressed: int = 0,
    baselined: int = 0,
    notes: Iterable[str] = (),
) -> int:
    """Print findings and the summary; return the process exit code.

    Text mode prints one finding per line (plus hot-path chains) to stdout
    and a one-line summary to stderr; under GitHub Actions
    (GITHUB_ACTIONS=true) it additionally emits `::error` workflow commands
    so findings appear as inline PR annotations without any CI-side
    grepping. `--json` mode prints a single JSON object to stdout and
    nothing else there — stdout IS the machine interface, so workflow
    commands are never mixed in (consumers like the fixture harness
    `json.loads` the stream).
    """
    findings = list(findings)
    notes = list(notes)
    if json_mode:
        payload = {
            "tool": tool,
            "files": files_scanned,
            "clean": not findings,
            "suppressed": suppressed,
            "baselined": baselined,
            "notes": notes,
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "rule": f.rule,
                    "message": f.message,
                    "symbol": f.symbol,
                    "what": f.what,
                    "chain": list(f.chain),
                }
                for f in findings
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if os.environ.get("GITHUB_ACTIONS") == "true":
            for f in findings:
                # Workflow-command values must stay on one line.
                msg = f.message.replace("\n", " ")
                print(
                    f"::error file={f.path},line={f.line},"
                    f"title={tool}:{f.rule}::{msg}"
                )
    for note in notes:
        print(f"{tool}: {note}", file=sys.stderr)
    print(
        f"{tool}: {files_scanned} files, {len(findings)} finding(s), "
        f"{suppressed} suppressed, {baselined} baselined",
        file=sys.stderr,
    )
    return 1 if findings else 0
