#!/usr/bin/env bash
# clang-tidy driver: configures a compile database if none exists, then runs
# the repo .clang-tidy profile over the C++ sources.
#
#   tools/run_clang_tidy.sh [-p BUILD_DIR] [--fix] [--if-available] [PATH...]
#
# PATHs default to src tests bench examples tools. Exit 0 = clean.
# --if-available turns a missing clang-tidy into a warning + exit 0 instead
# of exit 127, so CI and contributor machines without clang dev packages
# still pass (the udwn_lint/udwn_analyze gates run regardless).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-dev"
fix_flag=()
paths=()
if_available=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    -p) build_dir="$2"; shift 2 ;;
    --fix) fix_flag=(--fix --fix-errors); shift ;;
    --if-available) if_available=1; shift ;;
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) paths+=("$1"); shift ;;
  esac
done
[[ ${#paths[@]} -gt 0 ]] || paths=(src tests bench examples tools)

tidy="$(command -v clang-tidy || true)"
if [[ -z "${tidy}" ]]; then
  for version in 20 19 18 17 16 15; do
    if command -v "clang-tidy-${version}" >/dev/null 2>&1; then
      tidy="clang-tidy-${version}"
      break
    fi
  done
fi
if [[ -z "${tidy}" ]]; then
  if [[ "${if_available}" -eq 1 ]]; then
    echo "run_clang_tidy: WARNING: clang-tidy not found on PATH — skipping" >&2
    exit 0
  fi
  echo "run_clang_tidy: clang-tidy not found on PATH" >&2
  exit 127
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy: configuring ${build_dir} for compile_commands.json"
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

cd "${repo_root}"
files=()
while IFS= read -r f; do files+=("$f"); done \
  < <(find "${paths[@]}" -name '*.cpp' | sort)
if [[ ${#files[@]} -eq 0 ]]; then
  echo "run_clang_tidy: no sources under: ${paths[*]}" >&2
  exit 2
fi

echo "run_clang_tidy: ${tidy} over ${#files[@]} files (db: ${build_dir})"
status=0
printf '%s\n' "${files[@]}" \
  | xargs -P "$(nproc)" -n 4 \
      "${tidy}" -p "${build_dir}" --quiet "${fix_flag[@]}" || status=$?
exit "${status}"
